// Multi-hop data collection: the classic WSN workload (every sensor reports
// to a sink), run over the paper's two designs.
//
// This walks the `collect` API: trees are built automatically (nodes beyond
// direct sink range forward through the nearest closer node, with per-hop
// 802.15.4 ACKs), one tree per channel, all trees interleaved in one field.
// TMCP-style orthogonal partitioning caps the tree count at 4; the
// non-orthogonal DCN design runs 6 smaller, shallower trees on the same
// band and collects substantially more.
#include <cstdio>

#include "collect/collection.hpp"
#include "phy/channel_plan.hpp"
#include "stats/table.hpp"

int main() {
  using namespace nomc;
  std::printf("=== Data collection: 24 sensors -> one sink, 15 MHz band ===\n\n");

  struct Design {
    const char* name;
    int channels;
    double cfd;
    net::Scheme scheme;
  };
  const Design designs[] = {
      {"TMCP-style: 4 orthogonal trees", 4, 5.0, net::Scheme::kFixedCca},
      {"Non-orthogonal + DCN: 6 trees", 6, 3.0, net::Scheme::kDcn},
  };

  stats::TablePrinter table{{"design", "offered (pkt/s)", "collected (pkt/s)", "delivery"}};
  for (const Design& design : designs) {
    collect::CollectionConfig config;
    config.scheme = design.scheme;
    config.nodes_per_tree = 24 / design.channels;
    config.report_period = sim::SimTime::milliseconds(30);  // ~33 readings/s each
    const auto channels =
        phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{design.cfd}, design.channels);

    collect::CollectionScenario scenario{channels, config, /*seed=*/17};
    const double goodput =
        scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(10.0));

    const double offered = 24.0 * 1000.0 / config.report_period.to_milliseconds();
    table.add_row({design.name, stats::TablePrinter::num(offered, 0),
                   stats::TablePrinter::num(goodput, 1),
                   stats::TablePrinter::num(100.0 * goodput / offered, 1) + "%"});

    std::printf("%s — per-tree detail:\n", design.name);
    for (std::size_t t = 0; t < scenario.trees().size(); ++t) {
      const auto& tree = *scenario.trees()[t];
      std::uint64_t forwarded = 0;
      for (const auto& node : tree.nodes()) forwarded += node->forwarded;
      std::printf("  tree %zu (%.0f MHz): collected %llu, depth %d, relayed %llu\n", t,
                  tree.channel().value, static_cast<unsigned long long>(tree.collected()),
                  tree.max_depth(), static_cast<unsigned long long>(forwarded));
    }
    std::printf("\n");
  }
  table.print();
  std::printf("\nMore, shallower trees beat fewer, deeper ones — once DCN makes the\n"
              "non-orthogonal channels usable (TMCP's orthogonality constraint is the\n"
              "bottleneck the paper removes).\n");
  return 0;
}
