// Randomly scattered field (the paper's Case III, Fig. 24) — and DCN's
// documented weakness.
//
// Scenario: environmental monitoring over a large area; nodes of different
// networks are interleaved at random. Some sender->receiver pairs of the
// SAME network end up far apart, so the co-channel packets a sender
// overhears are weak — and DCN's safety rule (threshold strictly below the
// minimum co-channel RSSI, Eq. 1) pins its CCA threshold low. A low
// threshold cannot be relaxed over nearby inter-channel traffic, so the
// concurrency gain shrinks (paper: +6.2 % vs +14.7 % in the dense case).
//
// This example makes the mechanism visible: it prints, per link, the
// distance to the co-channel partner, the threshold the adjustor settled
// on, and the link's throughput under both schemes.
#include <cmath>
#include <cstdio>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/table.hpp"

int main() {
  using namespace nomc;
  std::printf("=== Random field (Case III): 6 networks scattered over 25x25 m ===\n\n");

  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  const net::RandomCaseConfig topology;  // defaults: 25 m field, power in [-22, 0]

  double overall_fixed = 0.0;
  double overall_dcn = 0.0;
  for (int design = 0; design < 2; ++design) {
    net::ScenarioConfig config;
    config.seed = 33;
    net::Scenario scenario{config};
    sim::RandomStream placement{config.seed, 999};
    scenario.add_networks(net::case3_random(channels, placement, topology),
                          design == 1 ? net::Scheme::kDcn : net::Scheme::kFixedCca);
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(10.0));

    if (design == 0) {
      overall_fixed = scenario.overall_throughput();
      continue;
    }
    overall_dcn = scenario.overall_throughput();

    stats::TablePrinter table{{"link", "co-partner distance (m)", "settled CCA thr (dBm)",
                               "pkt/s"}};
    for (int n = 0; n < scenario.network_count(); ++n) {
      const auto result = scenario.network_result(n);
      for (int l = 0; l < scenario.link_count(n); ++l) {
        // Distance between this sender and its co-channel partner sender:
        // what bounds the RSSI records feeding Eq. 4.
        const int partner = 1 - l;
        const phy::Vec2 self_pos =
            scenario.medium().position(scenario.sender_radio(n, l).node());
        const phy::Vec2 partner_pos =
            scenario.medium().position(scenario.sender_radio(n, partner).node());
        table.add_row({"N" + std::to_string(n) + "/L" + std::to_string(l),
                       stats::TablePrinter::num(distance(self_pos, partner_pos), 1),
                       stats::TablePrinter::num(scenario.adjustor(n, l)->threshold().value, 1),
                       stats::TablePrinter::num(result.links[l].throughput_pps, 1)});
      }
    }
    table.print();
  }

  std::printf("\noverall: fixed CCA %.1f pkt/s, DCN %.1f pkt/s (%+.1f%%)\n", overall_fixed,
              overall_dcn, 100.0 * (overall_dcn / overall_fixed - 1.0));
  std::printf("Links with a distant co-channel partner settle LOW thresholds (the Eq. 1\n"
              "safety rule), giving up concurrency — DCN's Case III limitation.\n");
  return 0;
}
