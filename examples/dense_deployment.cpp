// Dense deployment walkthrough (the paper's Case I, Fig. 22).
//
// Scenario: a dense sensor field — e.g. vibration monitoring across one
// machine hall — where every node interferes with every other. This is the
// regime the paper's introduction motivates: co-channel collisions are
// constant, so the operator spreads networks across channels; the question
// is how many channels a fixed band can sustain.
//
// The example walks the three design points (ZigBee default, non-orthogonal
// CFD=3 MHz without DCN, and with DCN), prints per-network results and
// fairness, and inspects the thresholds the CCA-Adjustors settled on.
#include <cstdio>
#include <vector>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/fairness.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

double run_design(const char* name, std::span<const phy::Mhz> channels,
                  int links_per_network, net::Scheme scheme) {
  net::RandomCaseConfig topology;
  topology.region_m = 3.0;             // everything within one small region
  topology.links_per_network = links_per_network;

  net::ScenarioConfig config;
  config.seed = 7;
  net::Scenario scenario{config};
  sim::RandomStream placement{config.seed, 999};
  scenario.add_networks(net::case1_dense(channels, placement, topology), scheme);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(10.0));

  std::printf("%s\n", name);
  stats::TablePrinter table{{"network", "MHz", "pkt/s", "PRR", "CCA thresholds (dBm)"}};
  std::vector<double> per_network;
  for (int n = 0; n < scenario.network_count(); ++n) {
    const auto result = scenario.network_result(n);
    per_network.push_back(result.throughput_pps);

    double prr = 0.0;
    for (const auto& link : result.links) prr += link.prr;
    prr /= static_cast<double>(result.links.size());

    std::string thresholds;
    for (int l = 0; l < scenario.link_count(n); ++l) {
      if (!thresholds.empty()) thresholds += " ";
      const dcn::CcaAdjustor* adjustor = scenario.adjustor(n, l);
      thresholds += stats::TablePrinter::num(
          adjustor != nullptr ? adjustor->threshold().value
                              : scenario.fixed_cca(n, l).threshold().value,
          1);
    }
    table.add_row({"N" + std::to_string(n),
                   stats::TablePrinter::num(scenario.network_channel(n).value, 0),
                   stats::TablePrinter::num(result.throughput_pps, 1),
                   stats::TablePrinter::num(100.0 * prr, 1) + "%", thresholds});
  }
  table.print();
  std::printf("overall: %.1f pkt/s   Jain fairness: %.3f\n\n",
              scenario.overall_throughput(), stats::jain_index(per_network));
  return scenario.overall_throughput();
}

}  // namespace

int main() {
  std::printf("=== Dense deployment (Case I): 24 nodes, 15 MHz band ===\n\n");
  const auto zigbee = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{5.0}, 4);
  const auto packed = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);

  const double base = run_design("-- ZigBee default: 4 channels @ 5 MHz, fixed -77 dBm CCA --",
                                 zigbee, 3, net::Scheme::kFixedCca);
  const double packed_fixed =
      run_design("-- Non-orthogonal: 6 channels @ 3 MHz, fixed CCA --", packed, 2,
                 net::Scheme::kFixedCca);
  const double packed_dcn = run_design("-- Non-orthogonal + DCN: 6 channels @ 3 MHz --", packed,
                                       2, net::Scheme::kDcn);

  std::printf("Packing the band alone:  %+.1f%%\n", 100.0 * (packed_fixed / base - 1.0));
  std::printf("Adding DCN on top:       %+.1f%%\n",
              100.0 * (packed_dcn / packed_fixed - 1.0));
  std::printf("Total vs ZigBee default: %+.1f%%\n", 100.0 * (packed_dcn / base - 1.0));
  return 0;
}
