// Channel survey: using the PHY-layer API directly, the way a deployment
// engineer would probe a site before choosing a channel plan.
//
// Prints the calibrated radio model (rejection curves, BER/PER vs SINR),
// then runs a live CPRR probe — two links colliding on purpose, the
// paper's §III-B experiment — at each candidate CFD, and ends with a
// channel-plan recommendation for a given band.
#include <cstdio>

#include "mac/attacker.hpp"
#include "phy/channel_plan.hpp"
#include "phy/medium.hpp"
#include "phy/modulation.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

/// The §III-B collision probe: attacker 1 m from the victim receiver,
/// both carrier-sense-disabled; returns the victim's CPRR.
double cprr_probe(double cfd_mhz) {
  sim::Scheduler scheduler;
  phy::Medium medium;

  const phy::Mhz ch_a{2460.0};
  const phy::Mhz ch_b{2460.0 + cfd_mhz};
  const phy::NodeId tx = medium.add_node({0.0, 0.0});
  const phy::NodeId rx = medium.add_node({0.0, 12.0});
  const phy::NodeId atk = medium.add_node({1.0, 12.0});
  const phy::NodeId atk_rx = medium.add_node({1.0, 0.0});

  phy::RadioConfig cfg_a;
  cfg_a.channel = ch_a;
  phy::RadioConfig cfg_b;
  cfg_b.channel = ch_b;
  phy::Radio tx_radio{scheduler, medium, sim::RandomStream{1, 0}, tx, cfg_a};
  phy::Radio rx_radio{scheduler, medium, sim::RandomStream{1, 1}, rx, cfg_a};
  phy::Radio atk_radio{scheduler, medium, sim::RandomStream{1, 2}, atk, cfg_b};
  phy::Radio atk_rx_radio{scheduler, medium, sim::RandomStream{1, 3}, atk_rx, cfg_b};

  mac::AttackerMac sender{scheduler, medium, tx_radio};
  mac::AttackerMac attacker{scheduler, medium, atk_radio};
  mac::AttackerMac receiver{scheduler, medium, rx_radio};
  mac::AttackerMac attacker_receiver{scheduler, medium, atk_rx_radio};
  sender.start(rx, 100, sim::SimTime::milliseconds(5));
  attacker.start(atk_rx, 50, sim::SimTime::milliseconds(3));
  scheduler.run_until(sim::SimTime::seconds(20.0));
  return receiver.counters().cprr();
}

}  // namespace

int main() {
  std::printf("=== Site survey with the PHY API ===\n\n");

  std::printf("Calibrated CC2420 channel rejection (dB) by frequency offset:\n");
  const auto decode = phy::ChannelRejection::cc2420_decode();
  const auto sensing = phy::ChannelRejection::cc2420_sensing();
  stats::TablePrinter rejection{{"offset (MHz)", "demodulator", "CCA energy detector"}};
  for (const double f : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 9.0, 15.0}) {
    rejection.add_row({stats::TablePrinter::num(f, 0),
                       stats::TablePrinter::num(decode.attenuation(phy::Mhz{f}).value, 1),
                       stats::TablePrinter::num(sensing.attenuation(phy::Mhz{f}).value, 1)});
  }
  rejection.print();

  std::printf("\nO-QPSK DSSS link budget (100-byte PSDU):\n");
  stats::TablePrinter ber_table{{"SINR (dB)", "BER", "PER"}};
  for (const double sinr : {-6.0, -4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 6.0}) {
    const double ber = phy::oqpsk_ber(sinr);
    char ber_str[32];
    std::snprintf(ber_str, sizeof ber_str, "%.2e", ber);
    ber_table.add_row({stats::TablePrinter::num(sinr, 0), ber_str,
                       stats::TablePrinter::num(phy::packet_error_rate(ber, 800), 3)});
  }
  ber_table.print();
  std::printf("50%%-PER cliff for 800-bit packets: %.1f dB SINR\n", phy::sinr_for_per50(800));

  std::printf("\nLive CPRR probe (two colliding links, attacker 24 dB hot):\n");
  stats::TablePrinter probe{{"CFD (MHz)", "CPRR"}};
  for (const double cfd : {5.0, 4.0, 3.0, 2.0, 1.0}) {
    probe.add_row({stats::TablePrinter::num(cfd, 0),
                   stats::TablePrinter::num(100.0 * cprr_probe(cfd), 1) + "%"});
  }
  probe.print();

  std::printf("\nChannel plans for the 2458-2473 MHz band:\n");
  for (const double cfd : {5.0, 3.0}) {
    const auto plan = phy::pack_band(phy::Mhz{2458.0}, phy::Mhz{2473.0}, phy::Mhz{cfd});
    std::printf("  CFD=%.0f MHz -> %zu channels:", cfd, plan.size());
    for (const auto c : plan) std::printf(" %.0f", c.value);
    std::printf("\n");
  }
  std::printf("\nRecommendation: CFD=3 MHz with DCN — CPRR stays ~97%% while channel\n"
              "count rises 1.5x over the ZigBee default (the paper's conclusion).\n");
  return 0;
}
