// nomc-campaign — declarative experiment-campaign driver.
//
// Expands a plain-text campaign spec (see docs/campaigns.md) into its sweep
// grid, runs every point through the parallel trial runner, and checkpoints
// completed points into a versioned JSONL result store, so an interrupted
// campaign resumes without recomputing — byte-identically, at any --jobs.
//
//   nomc-campaign run examples/campaigns/fig01_cfd.campaign --jobs 0
//   nomc-campaign resume examples/campaigns/fig01_cfd.campaign
//   nomc-campaign list examples/campaigns/fig01_cfd.campaign
//   nomc-campaign export-csv fig01_cfd.jsonl --out fig01_cfd.csv
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "exp/campaign.hpp"
#include "exp/result_store.hpp"
#include "exp/spec.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

int usage(std::FILE* out) {
  std::fputs(
      "usage: nomc-campaign <command> <file> [options]\n"
      "\n"
      "commands:\n"
      "  run <spec.campaign>         run the campaign into a fresh JSONL store\n"
      "  resume <spec.campaign>      continue an interrupted campaign\n"
      "  list <spec.campaign>        show the sweep grid and completion status\n"
      "  export-csv <store.jsonl>    convert a result store to long-format CSV\n"
      "\n"
      "options:\n"
      "  --out <path>      result store path (default: <campaign name>.jsonl;\n"
      "                    for export-csv: CSV path, default stdout)\n"
      "  --jobs <n>        trial threads per point (0 = all hardware threads)\n"
      "  --point-jobs <n>  sweep points computed concurrently (default 1;\n"
      "                    0 = all hardware threads). The store is written in\n"
      "                    point order and byte-identical for every value.\n"
      "  --trial-workers <n>  worker threads inside each trial (region-sharded\n"
      "                    execution; 0 = all hardware threads). Like --jobs,\n"
      "                    results are bit-identical for every value.\n"
      "  --max-points <n>  stop after computing n new points (testing aid;\n"
      "                    resume finishes the rest)\n"
      "  --overwrite       run: discard an existing store\n"
      "  --quiet           suppress per-point progress lines\n"
      "\n"
      "Spec grammar and the JSONL schema are documented in docs/campaigns.md.\n",
      out);
  return out == stdout ? 0 : 2;
}

cli::ArgParser make_options() {
  cli::ArgParser args;
  args.add_string("out", "", "result store path (default: <campaign name>.jsonl)");
  args.add_int("jobs", 1, "trial threads per point (0 = all hardware threads)");
  args.add_int("point-jobs", 1, "sweep points computed concurrently (0 = all)");
  args.add_int("trial-workers", 1, "worker threads inside each trial (0 = all)");
  args.add_int("max-points", -1, "stop after computing this many new points");
  args.add_flag("overwrite", "run: discard an existing result store");
  args.add_flag("quiet", "suppress per-point progress lines");
  return args;
}

std::string store_path(const cli::ArgParser& args, const exp::CampaignSpec& spec) {
  const std::string out = args.get_string("out");
  return out.empty() ? spec.name + ".jsonl" : out;
}

int run_or_resume(const std::string& spec_path, const cli::ArgParser& args, bool resume) {
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::load_campaign(spec_path, spec, spec_error)) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), spec_error.str().c_str());
    return 1;
  }

  exp::CampaignOptions options;
  options.jobs = args.get_int("jobs");
  options.point_jobs = args.get_int("point-jobs");
  options.trial_workers = args.get_int("trial-workers");
  options.max_points = args.get_int("max-points");
  options.quiet = args.get_flag("quiet");
  options.mode = resume ? exp::CampaignOptions::Mode::kResume
                 : args.get_flag("overwrite") ? exp::CampaignOptions::Mode::kOverwrite
                                              : exp::CampaignOptions::Mode::kFresh;

  const std::string out_path = store_path(args, spec);
  if (!options.quiet) {
    std::printf("campaign %s (spec %s) -> %s\n", spec.name.c_str(),
                exp::spec_hash(spec).c_str(), out_path.c_str());
  }
  exp::CampaignStats stats;
  std::string error;
  if (!exp::run_campaign(spec, out_path, options, &stats, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %d point(s) computed, %d reused, %d total -> %s\n", spec.name.c_str(),
              stats.computed, stats.reused, stats.total, out_path.c_str());
  return 0;
}

int list_campaign(const std::string& spec_path, const cli::ArgParser& args) {
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::load_campaign(spec_path, spec, spec_error)) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), spec_error.str().c_str());
    return 1;
  }
  const std::string out_path = store_path(args, spec);

  exp::StoreScan scan;
  std::string error;
  bool have_store = false;
  if (std::FILE* file = std::fopen(out_path.c_str(), "rb"); file != nullptr) {
    std::fclose(file);
    if (!exp::scan_store(out_path, exp::spec_hash(spec), scan, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    have_store = true;
  }

  std::printf("campaign %s (spec %s), store %s%s\n\n", spec.name.c_str(),
              exp::spec_hash(spec).c_str(), out_path.c_str(),
              have_store ? "" : " (not created yet)");
  stats::TablePrinter table{{"point", "assignment", "status", "overall (pkt/s)", "jain"}};
  for (const exp::SweepPoint& point : exp::expand_grid(spec)) {
    std::string assignment;
    for (const auto& [key, value] : point.assignment) {
      if (!assignment.empty()) assignment += " ";
      assignment += key + "=" + value;
    }
    if (assignment.empty()) assignment = "(base)";
    const exp::ResultRecord* record = nullptr;
    for (const exp::ResultRecord& candidate : scan.records) {
      if (candidate.point == point.index) record = &candidate;
    }
    table.add_row({std::to_string(point.index), assignment, record ? "done" : "pending",
                   record ? stats::TablePrinter::num(record->overall_pps, 1) : "-",
                   record ? stats::TablePrinter::num(record->jain, 3) : "-"});
  }
  table.print();
  return 0;
}

int export_csv(const std::string& store_file, const cli::ArgParser& args) {
  exp::StoreScan scan;
  std::string error;
  if (!exp::scan_store(store_file, /*expected_hash=*/"", scan, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (scan.truncated_tail) {
    std::fprintf(stderr, "note: dropped a torn trailing line (interrupted write)\n");
  }

  const std::string out_path = args.get_string("out");
  std::FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  const bool ok = exp::export_csv(scan.records, out);
  if (out != stdout) std::fclose(out);
  if (!ok) {
    std::fprintf(stderr, "CSV export failed\n");
    return 1;
  }
  if (!out_path.empty()) {
    std::printf("%zu record(s) exported to %s\n", scan.records.size(), out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0)) {
    return usage(stdout);
  }
  if (argc < 3) return usage(stderr);
  const std::string command = argv[1];
  const std::string file = argv[2];

  cli::ArgParser args = make_options();
  if (const auto exit_code =
          cli::parse_standard(args, argc, argv, std::string{"nomc-campaign "} + command,
                              /*first=*/3)) {
    return *exit_code;
  }

  if (command == "run") return run_or_resume(file, args, /*resume=*/false);
  if (command == "resume") return run_or_resume(file, args, /*resume=*/true);
  if (command == "list") return list_campaign(file, args);
  if (command == "export-csv") return export_csv(file, args);
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  return usage(stderr);
}
