// nomc-campaign — declarative experiment-campaign driver.
//
// Expands a plain-text campaign spec (see docs/campaigns.md) into its sweep
// grid, runs every point through the parallel trial runner, and checkpoints
// completed points into a versioned JSONL result store, so an interrupted
// campaign resumes without recomputing — byte-identically, at any --jobs.
//
// With --server it turns into a client of a running nomc-serve: submit ships
// the spec over the socket (already-computed points come from the server's
// result cache), status/query/export read the server's stores. Without
// --server the same commands work against local files (docs/service.md).
//
//   nomc-campaign run examples/campaigns/fig01_cfd.campaign --jobs 0
//   nomc-campaign resume examples/campaigns/fig01_cfd.campaign
//   nomc-campaign list examples/campaigns/fig01_cfd.campaign
//   nomc-campaign export-csv fig01_cfd.jsonl --out fig01_cfd.csv
//   nomc-campaign submit examples/campaigns/fig01_cfd.campaign --server nomc.sock
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "exp/campaign.hpp"
#include "exp/result_store.hpp"
#include "exp/spec.hpp"
#include "exp/store_index.hpp"
#include "stats/table.hpp"
#include "svc/client.hpp"
#include "svc/worker.hpp"

namespace {

using namespace nomc;

int usage(std::FILE* out) {
  std::fputs(
      "usage: nomc-campaign <command> <file> [options]\n"
      "\n"
      "commands:\n"
      "  run <spec.campaign>         run the campaign into a fresh JSONL store\n"
      "  resume <spec.campaign>      continue an interrupted campaign\n"
      "  list <spec.campaign>        show the sweep grid and completion status\n"
      "  export-csv <store.jsonl>    convert a result store to long-format CSV\n"
      "  submit <spec.campaign>      run via the campaign service (--server), or\n"
      "                              locally with resume semantics without it\n"
      "  status <spec|hash>          campaign progress + service cache counters\n"
      "  query <spec|hash> --point n print one stored record line\n"
      "  export <spec|hash>          long-format CSV, streamed record-by-record\n"
      "  shutdown <socket>           ask the nomc-serve at <socket> to exit\n"
      "\n"
      "options:\n"
      "  --server <socket> talk to the nomc-serve instance at this Unix-domain\n"
      "                    socket instead of local files (submit/status/query/\n"
      "                    export)\n"
      "  --point <n>       query: sweep-point index to fetch\n"
      "  --out <path>      result store path (default: <campaign name>.jsonl;\n"
      "                    for export-csv/export: CSV path, default stdout)\n"
      "  --jobs <n>        trial threads per point (0 = all hardware threads)\n"
      "  --point-jobs <n>  sweep points computed concurrently (default 1;\n"
      "                    0 = all hardware threads). The store is written in\n"
      "                    point order and byte-identical for every value.\n"
      "  --trial-workers <n>  worker threads inside each trial (region-sharded\n"
      "                    execution; 0 = all hardware threads). Like --jobs,\n"
      "                    results are bit-identical for every value.\n"
      "  --max-points <n>  stop after computing n new points (testing aid;\n"
      "                    resume finishes the rest)\n"
      "  --overwrite       run: discard an existing store\n"
      "  --quiet           suppress per-point progress lines\n"
      "\n"
      "Spec grammar and the JSONL schema are documented in docs/campaigns.md;\n"
      "the service protocol and result cache in docs/service.md.\n",
      out);
  return out == stdout ? 0 : 2;
}

cli::ArgParser make_options() {
  cli::ArgParser args;
  args.add_string("server", "", "nomc-serve Unix-domain socket to talk to");
  args.add_string("out", "", "result store path (default: <campaign name>.jsonl)");
  args.add_int("point", -1, "query: sweep-point index to fetch");
  args.add_int("jobs", 1, "trial threads per point (0 = all hardware threads)");
  args.add_int("point-jobs", 1, "sweep points computed concurrently (0 = all)");
  args.add_int("trial-workers", 1, "worker threads inside each trial (0 = all)");
  args.add_int("max-points", -1, "stop after computing this many new points");
  args.add_flag("overwrite", "run: discard an existing result store");
  args.add_flag("quiet", "suppress per-point progress lines");
  return args;
}

std::string store_path(const cli::ArgParser& args, const exp::CampaignSpec& spec) {
  const std::string out = args.get_string("out");
  return out.empty() ? spec.name + ".jsonl" : out;
}

bool read_whole_file(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

/// `file` for the service commands is a spec path or a bare 16-hex spec
/// hash. Fills whichever of `spec`/`hash` applies (`has_spec` says which).
bool resolve_campaign_arg(const std::string& file, exp::CampaignSpec& spec, bool& has_spec,
                          std::string& hash) {
  exp::SpecError spec_error;
  if (exp::load_campaign(file, spec, spec_error)) {
    has_spec = true;
    hash = exp::spec_hash(spec);
    return true;
  }
  has_spec = false;
  const bool hex16 = file.size() == 16 &&
                     file.find_first_not_of("0123456789abcdef") == std::string::npos;
  if (hex16) {
    hash = file;
    return true;
  }
  std::fprintf(stderr, "%s: not a loadable spec (%s) nor a 16-hex spec hash\n",
               file.c_str(), spec_error.str().c_str());
  return false;
}

/// Reply envelope check shared by every service call.
bool reply_ok(const exp::JsonValue& reply, std::string& error) {
  const exp::JsonValue* ok = reply.find("ok");
  if (ok == nullptr || ok->type != exp::JsonValue::Type::kBool) {
    error = "malformed reply (no \"ok\")";
    return false;
  }
  if (!ok->boolean) {
    const exp::JsonValue* message = reply.find("error");
    error = message != nullptr ? message->string : "unspecified server error";
    return false;
  }
  return true;
}

int run_or_resume(const std::string& spec_path, const cli::ArgParser& args, bool resume) {
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::load_campaign(spec_path, spec, spec_error)) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), spec_error.str().c_str());
    return 1;
  }

  exp::CampaignOptions options;
  options.jobs = args.get_int("jobs");
  options.point_jobs = args.get_int("point-jobs");
  options.trial_workers = args.get_int("trial-workers");
  options.max_points = args.get_int("max-points");
  options.quiet = args.get_flag("quiet");
  options.mode = resume ? exp::CampaignOptions::Mode::kResume
                 : args.get_flag("overwrite") ? exp::CampaignOptions::Mode::kOverwrite
                                              : exp::CampaignOptions::Mode::kFresh;

  const std::string out_path = store_path(args, spec);
  if (!options.quiet) {
    std::printf("campaign %s (spec %s) -> %s\n", spec.name.c_str(),
                exp::spec_hash(spec).c_str(), out_path.c_str());
  }
  exp::CampaignStats stats;
  std::string error;
  if (!exp::run_campaign(spec, out_path, options, &stats, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %d point(s) computed, %d reused, %d total -> %s\n", spec.name.c_str(),
              stats.computed, stats.reused, stats.total, out_path.c_str());
  return 0;
}

int list_campaign(const std::string& spec_path, const cli::ArgParser& args) {
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::load_campaign(spec_path, spec, spec_error)) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(), spec_error.str().c_str());
    return 1;
  }
  const std::string out_path = store_path(args, spec);
  const std::string hash = exp::spec_hash(spec);

  // The index keeps completion checks O(1) per point (and reconciles the
  // .idx sidecar as a side effect); only listed records are read.
  exp::StoreIndex index;
  std::string error;
  bool have_store = false;
  if (std::FILE* file = std::fopen(out_path.c_str(), "rb"); file != nullptr) {
    std::fclose(file);
    if (!index.open(out_path, hash, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    have_store = true;
  }

  std::printf("campaign %s (spec %s), store %s%s\n\n", spec.name.c_str(), hash.c_str(),
              out_path.c_str(), have_store ? "" : " (not created yet)");
  stats::TablePrinter table{{"point", "assignment", "status", "overall (pkt/s)", "jain"}};
  for (const exp::SweepPoint& point : exp::expand_grid(spec)) {
    std::string assignment;
    for (const auto& [key, value] : point.assignment) {
      if (!assignment.empty()) assignment += " ";
      assignment += key + "=" + value;
    }
    if (assignment.empty()) assignment = "(base)";

    const exp::StoreIndex::Entry* entry =
        have_store ? index.find(hash, point.index) : nullptr;
    exp::ResultRecord record;
    if (entry != nullptr && !index.read_record(*entry, record, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    table.add_row({std::to_string(point.index), assignment,
                   entry != nullptr ? "done" : "pending",
                   entry != nullptr ? stats::TablePrinter::num(record.overall_pps, 1) : "-",
                   entry != nullptr ? stats::TablePrinter::num(record.jain, 3) : "-"});
  }
  table.print();
  return 0;
}

int export_csv(const std::string& store_file, const cli::ArgParser& args) {
  // Streamed through the StoreIndex: one record in memory at a time, bytes
  // identical to the old whole-store exp::export_csv path.
  exp::StoreIndex index;
  std::string error;
  if (!index.open(store_file, /*expected_hash=*/"", error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (index.truncated_tail()) {
    std::fprintf(stderr, "note: dropped a torn trailing line (interrupted write)\n");
  }

  const std::string out_path = args.get_string("out");
  std::FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  const bool ok = exp::export_csv_indexed(index, out, error);
  if (out != stdout) std::fclose(out);
  if (!ok) {
    std::fprintf(stderr, "CSV export failed: %s\n", error.c_str());
    return 1;
  }
  if (!out_path.empty()) {
    std::printf("%zu record(s) exported to %s\n", index.entries().size(), out_path.c_str());
  }
  return 0;
}

// ---- Service-backed commands ---------------------------------------------

int submit_command(const std::string& spec_path, const cli::ArgParser& args) {
  const std::string server = args.get_string("server");
  if (server.empty()) {
    // Local fallback: submit semantics are "make sure this campaign is
    // complete", i.e. a resume against the default store path.
    return run_or_resume(spec_path, args, /*resume=*/true);
  }
  std::string spec_text;
  if (!read_whole_file(spec_path, spec_text)) {
    std::fprintf(stderr, "cannot read %s\n", spec_path.c_str());
    return 1;
  }

  svc::Client client;
  std::string error;
  if (!client.connect(server, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string request = "{\"op\":\"submit\",\"spec\":";
  exp::json_append_string(request, spec_text);
  request += '}';
  exp::JsonValue reply;
  if (!client.call(request, reply, error) || !reply_ok(reply, error)) {
    std::fprintf(stderr, "submit failed: %s\n", error.c_str());
    return 1;
  }
  const exp::JsonValue* campaign = reply.find("campaign");
  const exp::JsonValue* hash = reply.find("spec_hash");
  const exp::JsonValue* points = reply.find("points");
  const exp::JsonValue* done = reply.find("done");
  std::printf("%s: %d/%d point(s) done on %s (spec %s)\n",
              campaign != nullptr ? campaign->string.c_str() : "?",
              done != nullptr ? static_cast<int>(done->number) : -1,
              points != nullptr ? static_cast<int>(points->number) : -1, server.c_str(),
              hash != nullptr ? hash->string.c_str() : "?");
  return 0;
}

int status_command(const std::string& file, const cli::ArgParser& args) {
  exp::CampaignSpec spec;
  bool has_spec = false;
  std::string hash;
  if (!resolve_campaign_arg(file, spec, has_spec, hash)) return 1;

  const std::string server = args.get_string("server");
  if (server.empty()) {
    // Local: progress of the store next to us.
    if (!has_spec) {
      std::fprintf(stderr, "local status needs a spec file (a hash only works with "
                           "--server)\n");
      return 1;
    }
    const std::string out_path = store_path(args, spec);
    const int total = static_cast<int>(exp::expand_grid(spec).size());
    int done = 0;
    if (std::FILE* probe = std::fopen(out_path.c_str(), "rb"); probe != nullptr) {
      std::fclose(probe);
      exp::StoreIndex index;
      std::string error;
      if (!index.open(out_path, hash, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      for (int point = 0; point < total; ++point) {
        if (index.contains(hash, point)) ++done;
      }
    }
    std::printf("%s (spec %s): %d/%d point(s) done, store %s\n", spec.name.c_str(),
                hash.c_str(), done, total, out_path.c_str());
    return 0;
  }

  svc::Client client;
  std::string error;
  if (!client.connect(server, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string request = "{\"op\":\"status\",\"spec_hash\":";
  exp::json_append_string(request, hash);
  request += '}';
  exp::JsonValue reply;
  if (!client.call(request, reply, error) || !reply_ok(reply, error)) {
    std::fprintf(stderr, "status failed: %s\n", error.c_str());
    return 1;
  }
  const exp::JsonValue* campaign = reply.find("campaign");
  const exp::JsonValue* points = reply.find("points");
  const exp::JsonValue* done = reply.find("done");
  const exp::JsonValue* state = reply.find("state");
  const exp::JsonValue* submissions = reply.find("submissions");
  const exp::JsonValue* computed = reply.find("computed");
  const exp::JsonValue* cache_hits = reply.find("cache_hits");
  const exp::JsonValue* campaigns = reply.find("campaigns");
  const exp::JsonValue* retried = reply.find("retried");
  std::printf("%s (spec %s): %d/%d point(s) done on %s",
              campaign != nullptr ? campaign->string.c_str() : "?", hash.c_str(),
              done != nullptr ? static_cast<int>(done->number) : -1,
              points != nullptr ? static_cast<int>(points->number) : -1, server.c_str());
  if (state != nullptr && state->type == exp::JsonValue::Type::kString) {
    std::printf(" [%s]", state->string.c_str());
    if (state->string == "failed") {
      const exp::JsonValue* failed_first = reply.find("failed_first");
      const exp::JsonValue* failed_count = reply.find("failed_count");
      std::printf(" (points %d..+%d exhausted retries)",
                  failed_first != nullptr ? static_cast<int>(failed_first->number) : -1,
                  failed_count != nullptr ? static_cast<int>(failed_count->number) : -1);
    }
  }
  std::printf("\n");
  std::printf("server: %d submission(s), %d point(s) computed, %d cache hit(s), "
              "%d campaign(s), %d point(s) retried\n",
              submissions != nullptr ? static_cast<int>(submissions->number) : -1,
              computed != nullptr ? static_cast<int>(computed->number) : -1,
              cache_hits != nullptr ? static_cast<int>(cache_hits->number) : -1,
              campaigns != nullptr ? static_cast<int>(campaigns->number) : -1,
              retried != nullptr ? static_cast<int>(retried->number) : -1);
  return 0;
}

int query_command(const std::string& file, const cli::ArgParser& args) {
  const int point = args.get_int("point");
  if (point < 0) {
    std::fprintf(stderr, "query needs --point <n>\n");
    return 2;
  }
  exp::CampaignSpec spec;
  bool has_spec = false;
  std::string hash;
  if (!resolve_campaign_arg(file, spec, has_spec, hash)) return 1;

  const std::string server = args.get_string("server");
  if (server.empty()) {
    if (!has_spec) {
      std::fprintf(stderr, "local query needs a spec file (a hash only works with "
                           "--server)\n");
      return 1;
    }
    exp::StoreIndex index;
    std::string error;
    if (!index.open(store_path(args, spec), hash, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const exp::StoreIndex::Entry* entry = index.find(hash, point);
    std::string line;
    if (entry == nullptr) {
      std::fprintf(stderr, "point %d is not stored for %s\n", point, hash.c_str());
      return 1;
    }
    if (!index.read_line(*entry, line, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("%s\n", line.c_str());
    return 0;
  }

  svc::Client client;
  std::string error;
  if (!client.connect(server, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string request = "{\"op\":\"query\",\"spec_hash\":";
  exp::json_append_string(request, hash);
  request += ",\"point\":" + std::to_string(point) + "}";
  exp::JsonValue reply;
  if (!client.call(request, reply, error) || !reply_ok(reply, error)) {
    std::fprintf(stderr, "query failed: %s\n", error.c_str());
    return 1;
  }
  const exp::JsonValue* record = reply.find("record");
  if (record == nullptr || record->type != exp::JsonValue::Type::kString) {
    std::fprintf(stderr, "malformed reply (no \"record\")\n");
    return 1;
  }
  std::printf("%s\n", record->string.c_str());
  return 0;
}

int export_command(const std::string& file, const cli::ArgParser& args) {
  exp::CampaignSpec spec;
  bool has_spec = false;
  std::string hash;
  if (!resolve_campaign_arg(file, spec, has_spec, hash)) return 1;

  const std::string server = args.get_string("server");
  if (server.empty()) {
    if (!has_spec) {
      std::fprintf(stderr, "local export needs a spec file (a hash only works with "
                           "--server)\n");
      return 1;
    }
    return export_csv(store_path(args, spec), args);
  }

  svc::Client client;
  std::string error;
  if (!client.connect(server, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string request = "{\"op\":\"export\",\"spec_hash\":";
  exp::json_append_string(request, hash);
  request += '}';
  if (!client.send_line(request, error)) {
    std::fprintf(stderr, "export failed: %s\n", error.c_str());
    return 1;
  }

  const std::string out_path = args.get_string("out");
  std::FILE* out = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  // Stream: {"csv":<line>}* then {"ok":true,"done":true,"rows":N} (or an
  // error terminator once the server hits a bad record).
  int exit_code = 1;
  std::uint64_t rows = 0;
  while (true) {
    std::string line;
    exp::JsonValue reply;
    if (!client.recv_line(line, error) || !svc::parse_reply(line, reply, error)) {
      std::fprintf(stderr, "export failed: %s\n", error.c_str());
      break;
    }
    if (const exp::JsonValue* csv = reply.find("csv");
        csv != nullptr && csv->type == exp::JsonValue::Type::kString) {
      std::fprintf(out, "%s\n", csv->string.c_str());
      continue;
    }
    if (!reply_ok(reply, error)) {
      std::fprintf(stderr, "export failed: %s\n", error.c_str());
      break;
    }
    if (const exp::JsonValue* count = reply.find("rows"); count != nullptr) {
      rows = static_cast<std::uint64_t>(count->number);
    }
    exit_code = 0;
    break;
  }
  if (out != stdout) std::fclose(out);
  if (exit_code == 0 && !out_path.empty()) {
    std::printf("%llu row(s) exported to %s\n", static_cast<unsigned long long>(rows),
                out_path.c_str());
  }
  return exit_code;
}

int shutdown_command(const std::string& socket_path) {
  svc::Client client;
  std::string error;
  exp::JsonValue reply;
  if (!client.connect(socket_path, error) ||
      !client.call("{\"op\":\"shutdown\"}", reply, error) || !reply_ok(reply, error)) {
    std::fprintf(stderr, "shutdown failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("server at %s is shutting down\n", socket_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0)) {
    return usage(stdout);
  }
  if (argc >= 2 && std::strcmp(argv[1], "worker") == 0) {
    // Hidden: the worker half of nomc-serve's campaign sharding. Reads
    // lease lines on stdin, writes record lines on stdout; exits on EOF.
    // Not in the usage text — it is an implementation detail of --workers.
    return svc::run_worker(stdin, stdout);
  }
  if (argc < 3) return usage(stderr);
  const std::string command = argv[1];
  const std::string file = argv[2];

  cli::ArgParser args = make_options();
  if (const auto exit_code =
          cli::parse_standard(args, argc, argv, std::string{"nomc-campaign "} + command,
                              /*first=*/3)) {
    return *exit_code;
  }

  if (command == "run") return run_or_resume(file, args, /*resume=*/false);
  if (command == "resume") return run_or_resume(file, args, /*resume=*/true);
  if (command == "list") return list_campaign(file, args);
  if (command == "export-csv") return export_csv(file, args);
  if (command == "submit") return submit_command(file, args);
  if (command == "status") return status_command(file, args);
  if (command == "query") return query_command(file, args);
  if (command == "export") return export_command(file, args);
  if (command == "shutdown") return shutdown_command(file);
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  return usage(stderr);
}
