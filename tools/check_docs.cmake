# Docs-honesty check, run as a ctest via `cmake -P`:
#
#   cmake -DREPO_ROOT=<source root> -P tools/check_docs.cmake
#
# Documentation rots by referencing files that moved and tools that were
# renamed; this script makes those references part of the test suite. Over
# docs/*.md and README.md it verifies:
#   1. every backticked repo path (a token starting with src/, docs/,
#      tools/, bench/, tests/, or examples/) resolves — directories,
#      globs (`tests/golden/*.jsonl`), `:line` suffixes, and extensionless
#      binary references (`bench/scaling_curve` -> scaling_curve.cpp) are
#      all understood;
#   2. every relative markdown link target resolves from the linking file;
#   3. every tool binary this repo builds (tools/CMakeLists.txt
#      OUTPUT_NAME values) is mentioned in the documentation somewhere.
# Any failure lists every offending (file, reference) pair, then fails.

if(NOT DEFINED REPO_ROOT)
  get_filename_component(REPO_ROOT "${CMAKE_CURRENT_LIST_DIR}/.." ABSOLUTE)
endif()

file(GLOB doc_files "${REPO_ROOT}/docs/*.md")
list(APPEND doc_files "${REPO_ROOT}/README.md")
list(SORT doc_files)

set(errors "")
set(all_text "")

# Resolves one repo-relative path reference; appends to `errors` if broken.
function(check_path_token doc_name token)
  # Drop a clickable `path:line` suffix.
  string(REGEX REPLACE ":[0-9]+.*$" "" path "${token}")
  if(EXISTS "${REPO_ROOT}/${path}")
    return()
  endif()
  # Glob references (`tests/golden/*.jsonl`) must match at least one file.
  if(path MATCHES "[*]")
    file(GLOB hits "${REPO_ROOT}/${path}")
    if(hits)
      return()
    endif()
  else()
    # Built-binary references (`bench/scaling_curve`) resolve through their
    # source file (`bench/scaling_curve.cpp`).
    file(GLOB hits "${REPO_ROOT}/${path}.*")
    if(hits)
      return()
    endif()
  endif()
  set(errors "${errors}  ${doc_name}: broken path reference `${token}`\n" PARENT_SCOPE)
endfunction()

foreach(doc ${doc_files})
  file(READ "${doc}" text)
  get_filename_component(doc_name "${doc}" NAME)
  get_filename_component(doc_dir "${doc}" DIRECTORY)
  set(all_text "${all_text}${text}")

  # 1. Backticked repo paths. Tokens with spaces are command lines whose
  #    embedded paths get checked where they are referenced alone.
  string(REGEX MATCHALL "`[^`\r\n]+`" ticks "${text}")
  foreach(tick ${ticks})
    string(REGEX REPLACE "^`(.*)`$" "\\1" token "${tick}")
    if(token MATCHES "^(src|docs|tools|bench|tests|examples)/" AND NOT token MATCHES " ")
      check_path_token("${doc_name}" "${token}")
    endif()
  endforeach()

  # 2. Relative markdown link targets, resolved from the linking file.
  string(REGEX MATCHALL "\\]\\(([^)\r\n]+)\\)" links "${text}")
  foreach(link ${links})
    string(REGEX REPLACE "^\\]\\((.*)\\)$" "\\1" target "${link}")
    string(REGEX REPLACE "#.*$" "" target "${target}")
    if(target STREQUAL "" OR target MATCHES "^[a-z]+://")
      continue()
    endif()
    if(NOT EXISTS "${doc_dir}/${target}")
      set(errors "${errors}  ${doc_name}: broken link target (${target})\n")
    endif()
  endforeach()
endforeach()

# 3. Every built tool binary must be documented. The list is read from
#    tools/CMakeLists.txt so a renamed or added tool cannot drift silently.
file(STRINGS "${REPO_ROOT}/tools/CMakeLists.txt" output_names
     REGEX "OUTPUT_NAME [a-z0-9-]+")
foreach(line ${output_names})
  string(REGEX MATCH "OUTPUT_NAME ([a-z0-9-]+)" _ "${line}")
  set(tool "${CMAKE_MATCH_1}")
  if(NOT all_text MATCHES "${tool}")
    set(errors "${errors}  no documentation mentions the `${tool}` tool\n")
  endif()
endforeach()

if(errors)
  message(FATAL_ERROR "documentation is out of date with the tree:\n${errors}")
endif()
list(LENGTH doc_files doc_count)
message(STATUS "check_docs: ${doc_count} documents verified against the tree")
