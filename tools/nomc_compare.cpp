// nomc-compare — A/B comparison driver with confidence intervals.
//
// Runs two channel-plan/scheme designs over the same set of random
// deployments (paired seeds) and reports overall throughput as mean ± 95 %
// CI plus the paired relative gain. Example — the paper's headline:
//
//   nomc-compare --a-cfd 5 --a-channels 4 --a-scheme fixed --a-links 3
//                --b-cfd 3 --b-channels 6 --b-scheme dcn --trials 10
#include <cstdio>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

struct Design {
  double cfd = 3.0;
  int channels = 6;
  int links = 2;
  net::Scheme scheme = net::Scheme::kDcn;
  std::string scheme_name = "dcn";
};

double run_once(const Design& design, const std::string& topology_name,
                const net::RandomCaseConfig& base_topology, double band_start,
                std::uint64_t seed, double warmup_s, double measure_s) {
  const auto channels =
      phy::evenly_spaced(phy::Mhz{band_start}, phy::Mhz{design.cfd}, design.channels);
  net::RandomCaseConfig topology = base_topology;
  topology.links_per_network = design.links;
  sim::RandomStream placement{seed, 999};
  const auto specs = topology_name == "clustered"
                         ? net::case2_clustered(channels, placement, topology)
                     : topology_name == "random"
                         ? net::case3_random(channels, placement, topology)
                         : net::case1_dense(channels, placement, topology);

  net::ScenarioConfig config;
  config.seed = seed;
  net::Scenario scenario{config};
  scenario.add_networks(specs, design.scheme);
  scenario.run(sim::SimTime::seconds(warmup_s), sim::SimTime::seconds(measure_s));
  return scenario.overall_throughput();
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_double("band-start", 2458.0, "first channel center (MHz), both designs");
  cli::add_topology_option(args);
  args.add_double("power", 0.0, "fixed TX power (dBm); omit for random [-22, 0]");
  args.add_int("trials", 5, "paired random deployments");
  args.add_int("seed", 1, "base seed (trial i uses seed + i*1000003)");
  args.add_double("warmup", 2.0, "warm-up (s)");
  args.add_double("measure", 8.0, "measurement window (s)");
  args.add_double("a-cfd", 5.0, "design A: channel distance (MHz)");
  args.add_int("a-channels", 4, "design A: channel count");
  args.add_int("a-links", 3, "design A: links per network");
  cli::add_scheme_option(args, "a-scheme", "fixed", "design A");
  args.add_double("b-cfd", 3.0, "design B: channel distance (MHz)");
  args.add_int("b-channels", 6, "design B: channel count");
  args.add_int("b-links", 2, "design B: links per network");
  cli::add_scheme_option(args, "b-scheme", "dcn", "design B");

  if (const auto exit_code = cli::parse_standard(args, argc, argv, argv[0])) {
    return *exit_code;
  }

  Design a;
  a.cfd = args.get_double("a-cfd");
  a.channels = args.get_int("a-channels");
  a.links = args.get_int("a-links");
  a.scheme_name = args.get_string("a-scheme");
  Design b;
  b.cfd = args.get_double("b-cfd");
  b.channels = args.get_int("b-channels");
  b.links = args.get_int("b-links");
  b.scheme_name = args.get_string("b-scheme");
  if (!cli::scheme_from_args(args, "a-scheme", a.scheme) ||
      !cli::scheme_from_args(args, "b-scheme", b.scheme)) {
    return 2;
  }
  std::string topology_name;
  if (!cli::topology_from_args(args, "topology", topology_name)) return 2;

  net::RandomCaseConfig topology;
  if (args.provided("power")) {
    topology = topology.with_fixed_power(phy::Dbm{args.get_double("power")});
  }

  const int trials = args.get_int("trials");
  stats::SummaryStats stats_a;
  stats::SummaryStats stats_b;
  stats::SummaryStats gain;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed")) +
                               static_cast<std::uint64_t>(trial) * 1000003;
    const double result_a =
        run_once(a, topology_name, topology, args.get_double("band-start"), seed,
                 args.get_double("warmup"), args.get_double("measure"));
    const double result_b =
        run_once(b, topology_name, topology, args.get_double("band-start"), seed,
                 args.get_double("warmup"), args.get_double("measure"));
    stats_a.add(result_a);
    stats_b.add(result_b);
    if (result_a > 0.0) gain.add(100.0 * (result_b / result_a - 1.0));
  }

  auto describe = [](const Design& d) {
    return std::to_string(d.channels) + "ch @ " + stats::TablePrinter::num(d.cfd, 0) +
           "MHz, " + d.scheme_name;
  };
  stats::TablePrinter table{{"design", "overall (pkt/s)", "±95% CI"}};
  table.add_row({"A: " + describe(a), stats::TablePrinter::num(stats_a.mean(), 1),
                 stats::TablePrinter::num(stats_a.ci95_half_width(), 1)});
  table.add_row({"B: " + describe(b), stats::TablePrinter::num(stats_b.mean(), 1),
                 stats::TablePrinter::num(stats_b.ci95_half_width(), 1)});
  table.print();
  std::printf("\nB vs A (paired over %d deployments): %+.1f%% ± %.1f%%\n", trials,
              gain.mean(), gain.ci95_half_width());
  return 0;
}
