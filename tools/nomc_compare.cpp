// nomc-compare — A/B comparison driver with confidence intervals.
//
// Runs two channel-plan/scheme designs over the same set of random
// deployments (paired seeds) and reports overall throughput as mean ± 95 %
// CI plus the paired relative gain. Example — the paper's headline:
//
//   nomc-compare --a-cfd 5 --a-channels 4 --a-scheme fixed --a-links 3 \
//                --b-cfd 3 --b-channels 6 --b-scheme dcn --trials 10
#include <cstdio>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

struct Design {
  double cfd = 3.0;
  int channels = 6;
  int links = 2;
  net::Scheme scheme = net::Scheme::kDcn;
  std::string scheme_name = "dcn";
};

bool parse_scheme(const std::string& name, net::Scheme& out) {
  if (name == "fixed") {
    out = net::Scheme::kFixedCca;
  } else if (name == "dcn") {
    out = net::Scheme::kDcn;
  } else if (name == "carrier-sense") {
    out = net::Scheme::kCarrierSense;
  } else {
    return false;
  }
  return true;
}

double run_once(const Design& design, const std::string& topology_name,
                const net::RandomCaseConfig& base_topology, double band_start,
                std::uint64_t seed, double warmup_s, double measure_s) {
  const auto channels =
      phy::evenly_spaced(phy::Mhz{band_start}, phy::Mhz{design.cfd}, design.channels);
  net::RandomCaseConfig topology = base_topology;
  topology.links_per_network = design.links;
  sim::RandomStream placement{seed, 999};
  const auto specs = topology_name == "clustered"
                         ? net::case2_clustered(channels, placement, topology)
                     : topology_name == "random"
                         ? net::case3_random(channels, placement, topology)
                         : net::case1_dense(channels, placement, topology);

  net::ScenarioConfig config;
  config.seed = seed;
  net::Scenario scenario{config};
  scenario.add_networks(specs, design.scheme);
  scenario.run(sim::SimTime::seconds(warmup_s), sim::SimTime::seconds(measure_s));
  return scenario.overall_throughput();
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_double("band-start", 2458.0, "first channel center (MHz), both designs");
  args.add_string("topology", "dense", "dense | clustered | random");
  args.add_double("power", 0.0, "fixed TX power (dBm); omit for random [-22, 0]");
  args.add_int("trials", 5, "paired random deployments");
  args.add_int("seed", 1, "base seed (trial i uses seed + i*1000003)");
  args.add_double("warmup", 2.0, "warm-up (s)");
  args.add_double("measure", 8.0, "measurement window (s)");
  args.add_double("a-cfd", 5.0, "design A: channel distance (MHz)");
  args.add_int("a-channels", 4, "design A: channel count");
  args.add_int("a-links", 3, "design A: links per network");
  args.add_string("a-scheme", "fixed", "design A: fixed | dcn | carrier-sense");
  args.add_double("b-cfd", 3.0, "design B: channel distance (MHz)");
  args.add_int("b-channels", 6, "design B: channel count");
  args.add_int("b-links", 2, "design B: links per network");
  args.add_string("b-scheme", "dcn", "design B: fixed | dcn | carrier-sense");

  if (!args.parse(argc - 1, argv + 1)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.help(argv[0]).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help(argv[0]).c_str(), stdout);
    return 0;
  }

  Design a;
  a.cfd = args.get_double("a-cfd");
  a.channels = args.get_int("a-channels");
  a.links = args.get_int("a-links");
  a.scheme_name = args.get_string("a-scheme");
  Design b;
  b.cfd = args.get_double("b-cfd");
  b.channels = args.get_int("b-channels");
  b.links = args.get_int("b-links");
  b.scheme_name = args.get_string("b-scheme");
  if (!parse_scheme(a.scheme_name, a.scheme) || !parse_scheme(b.scheme_name, b.scheme)) {
    std::fprintf(stderr, "schemes must be fixed | dcn | carrier-sense\n");
    return 2;
  }

  net::RandomCaseConfig topology;
  if (args.provided("power")) {
    topology = topology.with_fixed_power(phy::Dbm{args.get_double("power")});
  }

  const int trials = args.get_int("trials");
  stats::SummaryStats stats_a;
  stats::SummaryStats stats_b;
  stats::SummaryStats gain;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed")) +
                               static_cast<std::uint64_t>(trial) * 1000003;
    const double result_a =
        run_once(a, args.get_string("topology"), topology, args.get_double("band-start"),
                 seed, args.get_double("warmup"), args.get_double("measure"));
    const double result_b =
        run_once(b, args.get_string("topology"), topology, args.get_double("band-start"),
                 seed, args.get_double("warmup"), args.get_double("measure"));
    stats_a.add(result_a);
    stats_b.add(result_b);
    if (result_a > 0.0) gain.add(100.0 * (result_b / result_a - 1.0));
  }

  auto describe = [](const Design& d) {
    return std::to_string(d.channels) + "ch @ " + stats::TablePrinter::num(d.cfd, 0) +
           "MHz, " + d.scheme_name;
  };
  stats::TablePrinter table{{"design", "overall (pkt/s)", "±95% CI"}};
  table.add_row({"A: " + describe(a), stats::TablePrinter::num(stats_a.mean(), 1),
                 stats::TablePrinter::num(stats_a.ci95_half_width(), 1)});
  table.add_row({"B: " + describe(b), stats::TablePrinter::num(stats_b.mean(), 1),
                 stats::TablePrinter::num(stats_b.ci95_half_width(), 1)});
  table.print();
  std::printf("\nB vs A (paired over %d deployments): %+.1f%% ± %.1f%%\n", trials,
              gain.mean(), gain.ci95_half_width());
  return 0;
}
