// nomc-bench — substrate benchmark driver with machine-readable output.
//
// Times the simulator's hot paths (medium energy accumulation warm and
// cold, shadowing draws, scheduler schedule/cancel/run, parallel trial
// replication) with a self-calibrating loop and writes one JSON document,
// so the perf trajectory can be tracked across PRs:
//
//   nomc-bench --out BENCH_substrate.json
//   nomc-bench --min-ms 200 --trial-jobs 8
//
// JSON format (documented in docs/parallel_runner.md):
//   {
//     "tool": "nomc-bench",
//     "hardware_threads": <int>,
//     "benchmarks": [
//       {"name": ..., "iterations": N, "ns_per_op": ..., "ops_per_second": ...},
//       ...
//     ]
//   }
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "phy/medium.hpp"
#include "phy/path_loss.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace nomc;
using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  long long iterations = 0;
  double ns_per_op = 0.0;
};

/// Run `op(iterations)` with doubling batch sizes until one batch exceeds
/// `min_ms`, then report that batch. `op` must do its own result sinking.
BenchResult measure(const std::string& name, double min_ms,
                    const std::function<void(long long)>& op) {
  long long iterations = 64;
  for (;;) {
    const auto start = Clock::now();
    op(iterations);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (elapsed_ms >= min_ms || iterations >= (1LL << 40)) {
      BenchResult result;
      result.name = name;
      result.iterations = iterations;
      result.ns_per_op = elapsed_ms * 1e6 / static_cast<double>(iterations);
      return result;
    }
    // Aim straight past min_ms instead of creeping up on it.
    const double scale = elapsed_ms <= 0.0 ? 16.0 : (min_ms * 1.5) / elapsed_ms;
    iterations = static_cast<long long>(static_cast<double>(iterations) *
                                        (scale > 16.0 ? 16.0 : scale)) +
                 1;
  }
}

volatile double g_sink = 0.0;  // defeats dead-code elimination

std::unique_ptr<phy::Medium> make_dense_medium(int active) {
  auto medium = std::make_unique<phy::Medium>();
  for (int i = 0; i < active + 1; ++i) {
    medium->add_node({static_cast<double>(i), 0.0});
  }
  for (int i = 0; i < active; ++i) {
    phy::Frame frame;
    frame.id = medium->allocate_frame_id();
    frame.src = static_cast<phy::NodeId>(i + 1);
    frame.channel = phy::Mhz{2458.0 + 3.0 * (i % 6)};
    frame.tx_power = phy::Dbm{0.0};
    frame.psdu_bytes = 100;
    medium->begin_tx(frame);
  }
  return medium;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_string("out", "BENCH_substrate.json", "output JSON path");
  args.add_double("min-ms", 100.0, "minimum measured wall time per benchmark (ms)");
  args.add_int("trial-jobs", 0, "jobs for the parallel replication benchmark (0 = all)");
  if (const auto exit_code = cli::parse_standard(args, argc, argv, argv[0])) {
    return *exit_code;
  }
  const double min_ms = args.get_double("min-ms");

  std::vector<BenchResult> results;

  // -- Medium: steady-state CCA reads over a stable active set ------------
  for (const int active : {4, 24}) {
    auto medium = make_dense_medium(active);
    results.push_back(measure(
        "medium_sense_energy_warm/" + std::to_string(active), min_ms, [&](long long n) {
          double acc = 0.0;
          for (long long i = 0; i < n; ++i) {
            acc += medium->sense_energy(0, phy::Mhz{2464.0}).value;
          }
          g_sink = acc;
        }));
  }

  // -- Medium: observer moves before every read (cache invalidation) ------
  {
    auto medium = make_dense_medium(24);
    results.push_back(measure("medium_sense_energy_cold/24", min_ms, [&](long long n) {
      double acc = 0.0;
      for (long long i = 0; i < n; ++i) {
        medium->set_position(0, {0.0, (i & 1) == 0 ? 0.5 : 0.0});
        acc += medium->sense_energy(0, phy::Mhz{2464.0}).value;
      }
      g_sink = acc;
    }));
  }

  // -- Shadowing: uncached Box–Muller draw per op -------------------------
  {
    const phy::ShadowingField field{2.5, 1};
    results.push_back(measure("shadowing_sample", min_ms, [&](long long n) {
      double acc = 0.0;
      for (long long i = 0; i < n; ++i) {
        acc += field.sample(static_cast<std::uint64_t>(i) + 1, 7).value;
      }
      g_sink = acc;
    }));
  }

  // -- Scheduler: schedule + drain, and the cancel-heavy CSMA pattern -----
  results.push_back(measure("scheduler_schedule_run/10000", min_ms, [&](long long n) {
    const long long rounds = (n + 9999) / 10000;
    for (long long r = 0; r < rounds; ++r) {
      sim::Scheduler scheduler;
      sim::RandomStream rng{1, 0};
      for (int i = 0; i < 10'000; ++i) {
        scheduler.schedule_at(sim::SimTime::microseconds(rng.uniform_int(0, 1'000'000)),
                              [] {});
      }
      scheduler.run_all();
      g_sink = static_cast<double>(scheduler.executed());
    }
  }));
  results.push_back(measure("scheduler_cancel_half/10000", min_ms, [&](long long n) {
    const long long rounds = (n + 9999) / 10000;
    for (long long r = 0; r < rounds; ++r) {
      sim::Scheduler scheduler;
      std::vector<sim::EventId> ids;
      ids.reserve(10'000);
      for (int i = 0; i < 10'000; ++i) {
        ids.push_back(scheduler.schedule_at(sim::SimTime::microseconds(i), [] {}));
      }
      for (int i = 0; i < 10'000; i += 2) scheduler.cancel(ids[i]);
      scheduler.run_all();
      g_sink = static_cast<double>(scheduler.executed());
    }
  }));

  // -- Parallel replication: serial vs pooled over pure-compute trials ----
  const int trial_jobs = sim::resolve_jobs(args.get_int("trial-jobs"));
  for (const int jobs : {1, trial_jobs}) {
    sim::ParallelRunner runner{jobs};
    const std::string name = "parallel_trials/jobs=" + std::to_string(jobs);
    results.push_back(measure(name, min_ms, [&](long long n) {
      const long long rounds = (n + 15) / 16;
      for (long long r = 0; r < rounds; ++r) {
        const auto batch = runner.map(16, [](int trial) {
          sim::RandomStream rng{static_cast<std::uint64_t>(trial) + 1, 0};
          double acc = 0.0;
          for (int i = 0; i < 20'000; ++i) acc += rng.uniform();
          return acc;
        });
        g_sink = batch[0];
      }
    }));
    if (trial_jobs == 1) break;  // single-core machine: one entry is enough
  }

  std::FILE* out = std::fopen(args.get_string("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.get_string("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"tool\": \"nomc-bench\",\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iterations\": %lld, \"ns_per_op\": %.2f, "
                 "\"ops_per_second\": %.1f}%s\n",
                 r.name.c_str(), r.iterations, r.ns_per_op, 1e9 / r.ns_per_op,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  for (const BenchResult& r : results) {
    std::printf("%-32s %12lld iters  %10.2f ns/op\n", r.name.c_str(), r.iterations,
                r.ns_per_op);
  }
  std::printf("\nwritten to %s\n", args.get_string("out").c_str());
  return 0;
}
