# ctest guard keeping the linter and its documentation honest, in both
# directions: every rule id in `nomc-lint --list-rules` must appear as a
# rule-table row in docs/static_analysis.md, and every rule-table row must
# name a rule the catalog actually emits. Run with:
#   cmake -DTOOL=<nomc-lint> -DREPO_ROOT=<repo> -P check_lint_docs.cmake
cmake_minimum_required(VERSION 3.16)
if(NOT DEFINED TOOL OR NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "check_lint_docs.cmake needs -DTOOL=... and -DREPO_ROOT=...")
endif()

execute_process(
  COMMAND ${TOOL} --list-rules
  OUTPUT_VARIABLE listing
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "nomc-lint --list-rules failed (exit ${code})")
endif()

set(catalog_rules "")
string(REPLACE "\n" ";" listing_lines "${listing}")
foreach(line IN LISTS listing_lines)
  if(line MATCHES "^([a-z0-9-]+) ")
    list(APPEND catalog_rules "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH catalog_rules catalog_count)
if(catalog_count EQUAL 0)
  message(FATAL_ERROR "parsed no rule ids from --list-rules output:\n${listing}")
endif()

set(doc_path "${REPO_ROOT}/docs/static_analysis.md")
file(READ ${doc_path} doc)
# Rule-table rows look like:  | `rule-id` | description |
set(doc_rules "")
string(REPLACE "\n" ";" doc_lines "${doc}")
foreach(line IN LISTS doc_lines)
  if(line MATCHES "^\\| *`([a-z0-9-]+)` *\\|")
    list(APPEND doc_rules "${CMAKE_MATCH_1}")
  endif()
endforeach()

foreach(rule IN LISTS catalog_rules)
  if(NOT rule IN_LIST doc_rules)
    message(FATAL_ERROR "rule '${rule}' is in the catalog but has no rule-table row in "
                        "${doc_path} — document it")
  endif()
endforeach()
foreach(rule IN LISTS doc_rules)
  if(NOT rule IN_LIST catalog_rules)
    message(FATAL_ERROR "rule '${rule}' has a rule-table row in ${doc_path} but is not in "
                        "the catalog — delete the row or restore the rule")
  endif()
endforeach()
list(LENGTH doc_rules doc_count)
message(STATUS "lint docs in sync: ${catalog_count} catalog rules, ${doc_count} table rows")
