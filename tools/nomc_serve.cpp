// nomc-serve — the campaign service daemon.
//
// Listens on a Unix-domain socket for line-delimited JSON requests from
// nomc-campaign clients (and anything else speaking the protocol in
// docs/service.md): campaign submissions, status/cache counters, point
// queries, and streamed CSV exports. Submitted specs are canonicalized and
// hashed; points already present in the per-spec JSONL store are served from
// the result cache, only the missing ones are simulated — so the stores it
// writes are byte-identical to local `nomc-campaign run` ones.
//
// With --workers N the missing points are sharded across N supervised
// worker processes (`nomc-campaign worker` children leased contiguous point
// ranges over pipes); the server keeps answering status/query/export while
// the campaign runs, and crashed or stalled workers have their points
// re-leased. Without it, submits simulate synchronously on the server
// thread, as before.
//
//   nomc-serve --socket /tmp/nomc.sock --data-dir campaigns --workers 4
//   nomc-campaign submit fig01.campaign --server /tmp/nomc.sock
#include <cstdio>
#include <string>

#include <unistd.h>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "svc/server.hpp"

namespace {

/// Default worker binary: the nomc-campaign sitting next to this executable
/// (they install side by side), falling back to PATH lookup semantics via
/// the bare name when /proc/self/exe is unreadable.
std::string sibling_campaign_bin() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return "nomc-campaign";
  std::string path(buffer, static_cast<std::size_t>(n));
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "nomc-campaign";
  return path.substr(0, slash + 1) + "nomc-campaign";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nomc;

  cli::ArgParser args;
  args.add_string("socket", "nomc.sock", "Unix-domain socket path to listen on");
  args.add_string("data-dir", "nomc-campaigns",
                  "directory for campaign stores and sidecars (created if missing)");
  args.add_int("jobs", 1, "trial threads per point (0 = all hardware threads)");
  args.add_int("point-jobs", 1, "sweep points computed concurrently (0 = all)");
  args.add_int("trial-workers", 1, "worker threads inside each trial (0 = all)");
  args.add_int("workers", 0,
               "worker processes a campaign is sharded across (0 = simulate on "
               "the server thread)");
  args.add_string("worker-bin", "",
                  "worker executable (default: the nomc-campaign next to nomc-serve)");
  args.add_int("lease-points", 2, "max sweep points per worker lease");
  args.add_int("lease-timeout-ms", 30000, "stalled-lease deadline before re-leasing");
  args.add_int("worker-retries", 2,
               "re-leases one point survives before the campaign is marked failed");
  args.add_flag("quiet", "suppress per-point progress lines");
  if (const auto exit_code = cli::parse_standard(args, argc, argv, "nomc-serve")) {
    return *exit_code;
  }

  svc::ServerConfig config;
  config.socket_path = args.get_string("socket");
  config.data_dir = args.get_string("data-dir");
  config.jobs = args.get_int("jobs");
  config.point_jobs = args.get_int("point-jobs");
  config.trial_workers = args.get_int("trial-workers");
  config.quiet = args.get_flag("quiet");
  config.workers = args.get_int("workers");
  config.lease_points = args.get_int("lease-points");
  config.lease_timeout_ms = args.get_int("lease-timeout-ms");
  config.worker_retries = args.get_int("worker-retries");
  if (config.workers > 0) {
    std::string worker_bin = args.get_string("worker-bin");
    if (worker_bin.empty()) worker_bin = sibling_campaign_bin();
    config.worker_argv = {worker_bin, "worker"};
  }

  svc::Server server;
  std::string error;
  if (!server.open(config, error)) {
    std::fprintf(stderr, "nomc-serve: %s\n", error.c_str());
    return 1;
  }
  if (!config.quiet) {
    std::printf("nomc-serve: listening on %s, data in %s/", config.socket_path.c_str(),
                config.data_dir.c_str());
    if (config.workers > 0) std::printf(", %d worker(s)", config.workers);
    std::printf("\n");
    std::fflush(stdout);
  }
  if (!server.run(error)) {
    std::fprintf(stderr, "nomc-serve: %s\n", error.c_str());
    return 1;
  }
  if (!config.quiet) {
    std::printf("nomc-serve: shutdown (%llu submission(s), %llu point(s) computed, "
                "%llu cache hit(s), %llu point(s) retried)\n",
                static_cast<unsigned long long>(server.submissions()),
                static_cast<unsigned long long>(server.computed()),
                static_cast<unsigned long long>(server.cache_hits()),
                static_cast<unsigned long long>(server.retried()));
  }
  return 0;
}
