// nomc-serve — the campaign service daemon.
//
// Listens on a Unix-domain socket for line-delimited JSON requests from
// nomc-campaign clients (and anything else speaking the protocol in
// docs/service.md): campaign submissions, status/cache counters, point
// queries, and streamed CSV exports. Submitted specs are canonicalized and
// hashed; points already present in the per-spec JSONL store are served from
// the result cache, only the missing ones are simulated — through the same
// run_campaign machinery as a local `nomc-campaign run`, so the stores it
// writes are byte-identical to local ones.
//
//   nomc-serve --socket /tmp/nomc.sock --data-dir campaigns --jobs 0
//   nomc-campaign submit fig01.campaign --server /tmp/nomc.sock
#include <cstdio>
#include <string>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "svc/server.hpp"

int main(int argc, char** argv) {
  using namespace nomc;

  cli::ArgParser args;
  args.add_string("socket", "nomc.sock", "Unix-domain socket path to listen on");
  args.add_string("data-dir", "nomc-campaigns",
                  "directory for campaign stores and sidecars (created if missing)");
  args.add_int("jobs", 1, "trial threads per point (0 = all hardware threads)");
  args.add_int("point-jobs", 1, "sweep points computed concurrently (0 = all)");
  args.add_int("trial-workers", 1, "worker threads inside each trial (0 = all)");
  args.add_flag("quiet", "suppress per-point progress lines");
  if (const auto exit_code = cli::parse_standard(args, argc, argv, "nomc-serve")) {
    return *exit_code;
  }

  svc::ServerConfig config;
  config.socket_path = args.get_string("socket");
  config.data_dir = args.get_string("data-dir");
  config.jobs = args.get_int("jobs");
  config.point_jobs = args.get_int("point-jobs");
  config.trial_workers = args.get_int("trial-workers");
  config.quiet = args.get_flag("quiet");

  svc::Server server;
  std::string error;
  if (!server.open(config, error)) {
    std::fprintf(stderr, "nomc-serve: %s\n", error.c_str());
    return 1;
  }
  if (!config.quiet) {
    std::printf("nomc-serve: listening on %s, data in %s/\n", config.socket_path.c_str(),
                config.data_dir.c_str());
    std::fflush(stdout);
  }
  if (!server.run(error)) {
    std::fprintf(stderr, "nomc-serve: %s\n", error.c_str());
    return 1;
  }
  if (!config.quiet) {
    std::printf("nomc-serve: shutdown (%llu submission(s), %llu point(s) computed, "
                "%llu cache hit(s))\n",
                static_cast<unsigned long long>(server.submissions()),
                static_cast<unsigned long long>(server.computed()),
                static_cast<unsigned long long>(server.cache_hits()));
  }
  return 0;
}
