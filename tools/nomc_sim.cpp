// nomc_sim — command-line simulation driver.
//
// Runs one multi-network deployment and prints per-network results, so a
// user can explore channel plans, schemes, and topologies without writing
// C++. Examples:
//
//   # The paper's headline comparison, one side at a time:
//   nomc_sim --cfd 5 --channels 4 --scheme fixed --links 3
//   nomc_sim --cfd 3 --channels 6 --scheme dcn
//
//   # Case III with a trace of every DCN threshold move:
//   nomc_sim --topology random --scheme dcn --trace run.csv
#include <cstdio>
#include <memory>
#include <string>

#include "cli/args.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/fairness.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

int run(const cli::ArgParser& args) {
  const auto channels = phy::evenly_spaced(phy::Mhz{args.get_double("band-start")},
                                           phy::Mhz{args.get_double("cfd")},
                                           args.get_int("channels"));

  net::Scheme scheme = net::Scheme::kFixedCca;
  const std::string scheme_name = args.get_string("scheme");
  if (scheme_name == "dcn") {
    scheme = net::Scheme::kDcn;
  } else if (scheme_name == "carrier-sense") {
    scheme = net::Scheme::kCarrierSense;
  } else if (scheme_name != "fixed") {
    std::fprintf(stderr, "unknown --scheme '%s' (fixed|dcn|carrier-sense)\n",
                 scheme_name.c_str());
    return 1;
  }

  net::RandomCaseConfig topology;
  topology.links_per_network = args.get_int("links");
  if (args.provided("power")) {
    topology = topology.with_fixed_power(phy::Dbm{args.get_double("power")});
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));
  sim::RandomStream placement{seed, 999};

  const std::string topology_name = args.get_string("topology");
  std::vector<net::NetworkSpec> specs;
  if (topology_name == "dense") {
    specs = net::case1_dense(channels, placement, topology);
  } else if (topology_name == "clustered") {
    specs = net::case2_clustered(channels, placement, topology);
  } else if (topology_name == "random") {
    specs = net::case3_random(channels, placement, topology);
  } else {
    std::fprintf(stderr, "unknown --topology '%s' (dense|clustered|random)\n",
                 topology_name.c_str());
    return 1;
  }

  net::ScenarioConfig config;
  config.seed = seed;
  config.psdu_bytes = args.get_int("psdu");
  config.fixed_cca_threshold = phy::Dbm{args.get_double("cca")};
  net::Scenario scenario{config};

  std::unique_ptr<sim::CsvTraceSink> trace;
  if (args.provided("trace")) {
    trace = std::make_unique<sim::CsvTraceSink>(args.get_string("trace"));
    scenario.scheduler().set_trace(trace.get());
  }

  scenario.add_networks(specs, scheme);
  scenario.run(sim::SimTime::seconds(args.get_double("warmup")),
               sim::SimTime::seconds(args.get_double("measure")));

  std::printf("scheme=%s topology=%s channels=%zu cfd=%.1fMHz seed=%llu\n\n",
              scheme_name.c_str(), topology_name.c_str(), channels.size(),
              args.get_double("cfd"), static_cast<unsigned long long>(seed));

  stats::TablePrinter table{{"network", "MHz", "pkt/s", "PRR", "backoffs/s", "drops/s"}};
  std::vector<double> per_network;
  for (int n = 0; n < scenario.network_count(); ++n) {
    const auto result = scenario.network_result(n);
    per_network.push_back(result.throughput_pps);
    double prr = 0.0;
    double backoffs = 0.0;
    double drops = 0.0;
    for (const auto& link : result.links) {
      prr += link.prr;
      backoffs += static_cast<double>(link.sender.cca_backoffs);
      drops += static_cast<double>(link.sender.cca_failures);
    }
    prr /= static_cast<double>(result.links.size());
    const double seconds = args.get_double("measure");
    table.add_row({"N" + std::to_string(n),
                   stats::TablePrinter::num(scenario.network_channel(n).value, 0),
                   stats::TablePrinter::num(result.throughput_pps, 1),
                   stats::TablePrinter::num(100.0 * prr, 1) + "%",
                   stats::TablePrinter::num(backoffs / seconds, 1),
                   stats::TablePrinter::num(drops / seconds, 1)});
  }
  table.print();
  std::printf("\noverall: %.1f pkt/s   Jain fairness: %.3f\n", scenario.overall_throughput(),
              stats::jain_index(per_network));
  if (trace) std::printf("trace written to %s\n", args.get_string("trace").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_double("band-start", 2458.0, "first channel center frequency (MHz)");
  args.add_double("cfd", 3.0, "channel frequency distance (MHz)");
  args.add_int("channels", 6, "number of channels / networks");
  args.add_string("scheme", "dcn", "channel access scheme: fixed | dcn | carrier-sense");
  args.add_string("topology", "dense", "deployment: dense | clustered | random");
  args.add_int("links", 2, "sender->receiver links per network");
  args.add_double("power", 0.0,
                  "fixed TX power (dBm) for all nodes; omit for random [-22, 0]");
  args.add_double("cca", -77.0, "fixed-scheme CCA threshold (dBm)");
  args.add_int("psdu", 100, "data frame PSDU size (bytes)");
  args.add_double("warmup", 2.0, "warm-up before measurement (s)");
  args.add_double("measure", 8.0, "measurement window (s)");
  args.add_int("seed", 1, "random seed (placement, fading, backoff)");
  args.add_string("trace", "", "write a CSV event trace to this path");

  if (!args.parse(argc - 1, argv + 1)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.help(argv[0]).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help(argv[0]).c_str(), stdout);
    return 0;
  }
  return run(args);
}
