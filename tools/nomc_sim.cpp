// nomc_sim — command-line simulation driver.
//
// Runs one multi-network deployment and prints per-network results, so a
// user can explore channel plans, schemes, and topologies without writing
// C++. Examples:
//
//   # The paper's headline comparison, one side at a time:
//   nomc_sim --cfd 5 --channels 4 --scheme fixed --links 3
//   nomc_sim --cfd 3 --channels 6 --scheme dcn
//
//   # Case III with a trace of every DCN threshold move:
//   nomc_sim --topology random --scheme dcn --trace run.csv
//
//   # 32 independent deployments averaged, replicated across all cores:
//   nomc_sim --scheme dcn --trials 32 --jobs 0
//
// One operating point of a sweep; for whole parameter sweeps with a result
// store, see nomc-campaign. Both execute points through exp::run_point, so
// their numbers agree exactly.
#include <cstdio>
#include <memory>
#include <string>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "exp/campaign.hpp"
#include "mac/cca.hpp"
#include "net/scenario.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

int run(const cli::ArgParser& args) {
  exp::PointParams params;
  params.scheme = args.get_string("scheme");
  params.band_start_mhz = args.get_double("band-start");
  params.cfd_mhz = args.get_double("cfd");
  params.channels = args.get_int("channels");
  params.links = args.get_int("links");
  if (args.provided("power")) params.power_dbm = args.get_double("power");
  params.cca_dbm = args.get_double("cca");
  params.psdu_bytes = args.get_int("psdu");
  params.warmup_s = args.get_double("warmup");
  params.measure_s = args.get_double("measure");
  params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  params.trials = args.get_int("trials");

  net::Scheme scheme;
  if (!cli::scheme_from_args(args, "scheme", scheme)) return 1;
  if (!cli::topology_from_args(args, "topology", params.topology)) return 1;
  if (params.trials < 1) {
    std::fprintf(stderr, "--trials must be >= 1\n");
    return 1;
  }

  // The event trace is a single-run debugging artifact; averaging trials
  // would interleave unrelated runs, so the trace only attaches to trial 0
  // and --trace forces that trial to run alone on the calling thread.
  std::unique_ptr<sim::CsvTraceSink> trace;
  if (args.provided("trace") && params.trials > 1) {
    std::fprintf(stderr, "--trace requires --trials 1\n");
    return 1;
  }
  // The trace attaches to the serial path's single scheduler; a sharded
  // trial has one scheduler per region, so the two options are exclusive.
  const int trial_workers = args.get_int("trial-workers");
  if (args.provided("trace") && trial_workers != 1) {
    std::fprintf(stderr, "--trace requires --trial-workers 1\n");
    return 1;
  }
  if (args.provided("trace")) {
    trace = std::make_unique<sim::CsvTraceSink>(args.get_string("trace"));
  }

  sim::ParallelRunner runner{trace ? 1 : args.get_int("jobs")};
  const exp::PointResult mean = exp::run_point(
      params, runner,
      [&](int trial, net::Scenario& scenario) {
        if (trace && trial == 0) scenario.scheduler().set_trace(trace.get());
      },
      trial_workers);

  std::printf("scheme=%s topology=%s channels=%d cfd=%.1fMHz seed=%llu trials=%d jobs=%d\n\n",
              params.scheme.c_str(), params.topology.c_str(), params.channels,
              params.cfd_mhz, static_cast<unsigned long long>(params.seed), params.trials,
              runner.jobs());

  stats::TablePrinter table{{"network", "MHz", "pkt/s", "PRR", "backoffs/s", "drops/s"}};
  for (std::size_t n = 0; n < mean.pps.size(); ++n) {
    std::string label = "N";  // discrete appends keep GCC 12's -Wrestrict quiet
    label += std::to_string(n);
    table.add_row({std::move(label),
                   stats::TablePrinter::num(
                       params.band_start_mhz + params.cfd_mhz * static_cast<double>(n), 0),
                   stats::TablePrinter::num(mean.pps[n], 1),
                   stats::TablePrinter::num(100.0 * mean.prr[n], 1) + "%",
                   stats::TablePrinter::num(mean.backoffs_per_s[n], 1),
                   stats::TablePrinter::num(mean.drops_per_s[n], 1)});
  }
  table.print();
  std::printf("\noverall: %.1f pkt/s   Jain fairness: %.3f\n", mean.overall_pps, mean.jain);
  if (trace) std::printf("trace written to %s\n", args.get_string("trace").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_double("band-start", 2458.0, "first channel center frequency (MHz)");
  args.add_double("cfd", 3.0, "channel frequency distance (MHz)");
  args.add_int("channels", 6, "number of channels / networks");
  cli::add_scheme_option(args, "scheme", "dcn");
  cli::add_topology_option(args);
  args.add_int("links", 2, "sender->receiver links per network");
  args.add_double("power", 0.0,
                  "fixed TX power (dBm) for all nodes; omit for random [-22, 0]");
  args.add_double("cca", mac::kZigbeeDefaultCcaThreshold.value,
                  "fixed-scheme CCA threshold (dBm)");
  args.add_int("psdu", 100, "data frame PSDU size (bytes)");
  args.add_double("warmup", 2.0, "warm-up before measurement (s)");
  args.add_double("measure", 8.0, "measurement window (s)");
  args.add_int("seed", 1, "random seed (placement, fading, backoff)");
  args.add_int("trials", 1, "independent random deployments averaged (seed + i*1000003)");
  args.add_int("jobs", 1, "worker threads for trials (0 = all hardware threads)");
  args.add_int("trial-workers", 1,
               "worker threads inside each trial, region-sharded (0 = all; "
               "bit-identical results at any value)");
  args.add_string("trace", "", "write a CSV event trace to this path (needs --trials 1)");

  if (const auto exit_code = cli::parse_standard(args, argc, argv, argv[0])) {
    return *exit_code;
  }
  return run(args);
}
