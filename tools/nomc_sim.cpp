// nomc_sim — command-line simulation driver.
//
// Runs one multi-network deployment and prints per-network results, so a
// user can explore channel plans, schemes, and topologies without writing
// C++. Examples:
//
//   # The paper's headline comparison, one side at a time:
//   nomc_sim --cfd 5 --channels 4 --scheme fixed --links 3
//   nomc_sim --cfd 3 --channels 6 --scheme dcn
//
//   # Case III with a trace of every DCN threshold move:
//   nomc_sim --topology random --scheme dcn --trace run.csv
//
//   # 32 independent deployments averaged, replicated across all cores:
//   nomc_sim --scheme dcn --trials 32 --jobs 0
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "sim/parallel.hpp"
#include "stats/fairness.hpp"
#include "stats/table.hpp"

namespace {

using namespace nomc;

/// Per-network numbers of one trial, in network order.
struct TrialResult {
  std::vector<double> pps;
  std::vector<double> prr;
  std::vector<double> backoffs_per_s;
  std::vector<double> drops_per_s;
  double overall_pps = 0.0;
};

int run(const cli::ArgParser& args) {
  const auto channels = phy::evenly_spaced(phy::Mhz{args.get_double("band-start")},
                                           phy::Mhz{args.get_double("cfd")},
                                           args.get_int("channels"));

  net::Scheme scheme = net::Scheme::kFixedCca;
  const std::string scheme_name = args.get_string("scheme");
  if (scheme_name == "dcn") {
    scheme = net::Scheme::kDcn;
  } else if (scheme_name == "carrier-sense") {
    scheme = net::Scheme::kCarrierSense;
  } else if (scheme_name != "fixed") {
    std::fprintf(stderr, "unknown --scheme '%s' (fixed|dcn|carrier-sense)\n",
                 scheme_name.c_str());
    return 1;
  }

  net::RandomCaseConfig topology;
  topology.links_per_network = args.get_int("links");
  if (args.provided("power")) {
    topology = topology.with_fixed_power(phy::Dbm{args.get_double("power")});
  }
  const std::uint64_t base_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string topology_name = args.get_string("topology");
  if (topology_name != "dense" && topology_name != "clustered" && topology_name != "random") {
    std::fprintf(stderr, "unknown --topology '%s' (dense|clustered|random)\n",
                 topology_name.c_str());
    return 1;
  }
  const int trials = args.get_int("trials");
  const int jobs = sim::resolve_jobs(args.get_int("jobs"));
  if (trials < 1) {
    std::fprintf(stderr, "--trials must be >= 1\n");
    return 1;
  }
  const double measure_s = args.get_double("measure");

  // The event trace is a single-run debugging artifact; averaging trials
  // would interleave unrelated runs, so the trace only attaches to trial 0
  // and --trace forces that trial to run alone on the calling thread.
  std::unique_ptr<sim::CsvTraceSink> trace;
  if (args.provided("trace") && trials > 1) {
    std::fprintf(stderr, "--trace requires --trials 1\n");
    return 1;
  }

  // One self-contained deployment + run per trial; trial i is seeded like
  // bench::trial_seed so CLI results line up with the figure benches.
  auto run_trial = [&](int trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial) * 1000003;
    sim::RandomStream placement{seed, 999};
    std::vector<net::NetworkSpec> specs;
    if (topology_name == "clustered") {
      specs = net::case2_clustered(channels, placement, topology);
    } else if (topology_name == "random") {
      specs = net::case3_random(channels, placement, topology);
    } else {
      specs = net::case1_dense(channels, placement, topology);
    }

    net::ScenarioConfig config;
    config.seed = seed;
    config.psdu_bytes = args.get_int("psdu");
    config.fixed_cca_threshold = phy::Dbm{args.get_double("cca")};
    net::Scenario scenario{config};
    if (trace && trial == 0) scenario.scheduler().set_trace(trace.get());
    scenario.add_networks(specs, scheme);
    scenario.run(sim::SimTime::seconds(args.get_double("warmup")),
                 sim::SimTime::seconds(measure_s));

    TrialResult result;
    result.overall_pps = scenario.overall_throughput();
    for (int n = 0; n < scenario.network_count(); ++n) {
      const auto network = scenario.network_result(n);
      double prr = 0.0;
      double backoffs = 0.0;
      double drops = 0.0;
      for (const auto& link : network.links) {
        prr += link.prr;
        backoffs += static_cast<double>(link.sender.cca_backoffs);
        drops += static_cast<double>(link.sender.cca_failures);
      }
      result.pps.push_back(network.throughput_pps);
      result.prr.push_back(prr / static_cast<double>(network.links.size()));
      result.backoffs_per_s.push_back(backoffs / measure_s);
      result.drops_per_s.push_back(drops / measure_s);
    }
    return result;
  };

  if (args.provided("trace")) {
    trace = std::make_unique<sim::CsvTraceSink>(args.get_string("trace"));
  }
  sim::ParallelRunner runner{trace ? 1 : jobs};
  const std::vector<TrialResult> per_trial = runner.map(trials, run_trial);

  // Seed-ordered mean across trials (matches bench::run_band's averaging).
  TrialResult mean;
  const std::size_t networks = per_trial.front().pps.size();
  mean.pps.assign(networks, 0.0);
  mean.prr.assign(networks, 0.0);
  mean.backoffs_per_s.assign(networks, 0.0);
  mean.drops_per_s.assign(networks, 0.0);
  for (const TrialResult& one : per_trial) {
    for (std::size_t n = 0; n < networks; ++n) {
      mean.pps[n] += one.pps[n];
      mean.prr[n] += one.prr[n];
      mean.backoffs_per_s[n] += one.backoffs_per_s[n];
      mean.drops_per_s[n] += one.drops_per_s[n];
    }
    mean.overall_pps += one.overall_pps;
  }
  for (std::size_t n = 0; n < networks; ++n) {
    mean.pps[n] /= trials;
    mean.prr[n] /= trials;
    mean.backoffs_per_s[n] /= trials;
    mean.drops_per_s[n] /= trials;
  }
  mean.overall_pps /= trials;

  std::printf("scheme=%s topology=%s channels=%zu cfd=%.1fMHz seed=%llu trials=%d jobs=%d\n\n",
              scheme_name.c_str(), topology_name.c_str(), channels.size(),
              args.get_double("cfd"), static_cast<unsigned long long>(base_seed), trials,
              runner.jobs());

  stats::TablePrinter table{{"network", "MHz", "pkt/s", "PRR", "backoffs/s", "drops/s"}};
  for (std::size_t n = 0; n < networks; ++n) {
    table.add_row({"N" + std::to_string(n),
                   stats::TablePrinter::num(channels[n].value, 0),
                   stats::TablePrinter::num(mean.pps[n], 1),
                   stats::TablePrinter::num(100.0 * mean.prr[n], 1) + "%",
                   stats::TablePrinter::num(mean.backoffs_per_s[n], 1),
                   stats::TablePrinter::num(mean.drops_per_s[n], 1)});
  }
  table.print();
  std::printf("\noverall: %.1f pkt/s   Jain fairness: %.3f\n", mean.overall_pps,
              stats::jain_index(mean.pps));
  if (trace) std::printf("trace written to %s\n", args.get_string("trace").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_double("band-start", 2458.0, "first channel center frequency (MHz)");
  args.add_double("cfd", 3.0, "channel frequency distance (MHz)");
  args.add_int("channels", 6, "number of channels / networks");
  args.add_string("scheme", "dcn", "channel access scheme: fixed | dcn | carrier-sense");
  args.add_string("topology", "dense", "deployment: dense | clustered | random");
  args.add_int("links", 2, "sender->receiver links per network");
  args.add_double("power", 0.0,
                  "fixed TX power (dBm) for all nodes; omit for random [-22, 0]");
  args.add_double("cca", -77.0, "fixed-scheme CCA threshold (dBm)");
  args.add_int("psdu", 100, "data frame PSDU size (bytes)");
  args.add_double("warmup", 2.0, "warm-up before measurement (s)");
  args.add_double("measure", 8.0, "measurement window (s)");
  args.add_int("seed", 1, "random seed (placement, fading, backoff)");
  args.add_int("trials", 1, "independent random deployments averaged (seed + i*1000003)");
  args.add_int("jobs", 1, "worker threads for trials (0 = all hardware threads)");
  args.add_string("trace", "", "write a CSV event trace to this path (needs --trials 1)");

  if (!args.parse(argc - 1, argv + 1)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.help(argv[0]).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help(argv[0]).c_str(), stdout);
    return 0;
  }
  return run(args);
}
