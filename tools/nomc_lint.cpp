// nomc-lint — repo-specific determinism, unit-safety, and hygiene linter.
//
// Walks C++ sources (and tests/golden campaign specs) and enforces the
// invariants the test suite cannot see from the outside: no stray RNG, no
// hash-order output, no log/linear power mixing, no naked CCA literals.
// Diagnostics are clang-style (`file:line:col: warning: ... [rule-id]`);
// findings are suppressible inline (`// nomc-lint: allow(rule-id)`) or via
// the checked-in baseline. Exit status: 0 clean, 1 new findings, 2 usage or
// I/O error — so CI can require it. See docs/static_analysis.md.
//
//   nomc-lint                      lint src/ tools/ bench/ tests/golden/
//   nomc-lint src/phy              lint one tree
//   nomc-lint --list-rules         print the rule catalog
//   nomc-lint --write-baseline     re-admit all current findings
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/driver.hpp"

namespace {

using namespace nomc;

constexpr const char* kDefaultBaseline = "tools/nomc_lint.baseline";

int usage(std::FILE* out) {
  std::fputs(
      "usage: nomc-lint [options] [path...]\n"
      "\n"
      "Lints C++ sources (.cpp/.cc/.hpp/.h/.hh) and golden campaign specs for\n"
      "repo-specific determinism, unit-safety, and hygiene invariants.\n"
      "Default paths: src tools bench tests/golden (run from the repo root).\n"
      "\n"
      "options:\n"
      "  --baseline <file>   baseline of grandfathered findings\n"
      "                      (default: tools/nomc_lint.baseline)\n"
      "  --no-baseline       ignore the baseline; report everything\n"
      "  --write-baseline    rewrite the baseline from current findings\n"
      "  --list-rules        print the rule catalog and exit\n"
      "  --verbose           also print suppressed and baselined findings\n"
      "  --help              this text\n",
      out);
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path = kDefaultBaseline;
  bool use_baseline = true;
  bool write_baseline = false;
  bool verbose = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") return usage(stdout);
    if (arg == "--list-rules") {
      for (const lint::RuleInfo& rule : lint::rule_catalog()) {
        std::printf("%-24s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nomc-lint: --baseline needs a path\n");
        return 2;
      }
      baseline_path = argv[++i];
      continue;
    }
    if (arg == "--no-baseline") {
      use_baseline = false;
      continue;
    }
    if (arg == "--write-baseline") {
      write_baseline = true;
      continue;
    }
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "nomc-lint: unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    }
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "tools", "bench", "tests/golden"};

  std::vector<std::string> files;
  std::string error;
  for (const std::string& root : roots) {
    if (!lint::collect_files(root, files, error)) {
      std::fprintf(stderr, "nomc-lint: %s\n", error.c_str());
      return 2;
    }
  }

  std::vector<lint::Finding> findings;
  for (const std::string& file : files) {
    if (!lint::lint_path(file, findings, error)) {
      std::fprintf(stderr, "nomc-lint: %s\n", error.c_str());
      return 2;
    }
  }

  if (write_baseline) {
    const std::string serialized = lint::Baseline::serialize(findings);
    std::FILE* out = std::fopen(baseline_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "nomc-lint: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    std::fwrite(serialized.data(), 1, serialized.size(), out);
    std::fclose(out);
    std::size_t entries = 0;
    for (const lint::Finding& finding : findings) {
      if (!finding.suppressed) ++entries;
    }
    std::printf("nomc-lint: wrote %zu baseline entr%s to %s\n", entries,
                entries == 1 ? "y" : "ies", baseline_path.c_str());
    return 0;
  }

  lint::Baseline baseline;
  if (use_baseline && !baseline.load(baseline_path, error)) {
    std::fprintf(stderr, "nomc-lint: %s\n", error.c_str());
    return 2;
  }
  baseline.apply(findings);

  std::size_t fresh = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const lint::Finding& finding : findings) {
    if (finding.suppressed) {
      ++suppressed;
      if (verbose) {
        std::printf("%s (suppressed)\n", lint::format_diagnostic(finding).c_str());
      }
      continue;
    }
    if (finding.baselined) {
      ++baselined;
      if (verbose) {
        std::printf("%s (baselined)\n", lint::format_diagnostic(finding).c_str());
      }
      continue;
    }
    ++fresh;
    std::printf("%s\n", lint::format_diagnostic(finding).c_str());
  }

  std::printf("nomc-lint: %zu file%s, %zu new finding%s (%zu suppressed, %zu baselined)\n",
              files.size(), files.size() == 1 ? "" : "s", fresh, fresh == 1 ? "" : "s",
              suppressed, baselined);
  return fresh == 0 ? 0 : 1;
}
