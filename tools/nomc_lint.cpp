// nomc-lint — repo-specific determinism, unit-safety, hygiene, and
// architecture linter.
//
// Walks C++ sources (and campaign specs) and enforces the invariants the
// test suite cannot see from the outside: no stray RNG, no hash-order
// output, no log/linear power mixing, no naked CCA literals. On top of the
// per-file rules, whole-program passes check the module include graph
// against the layering spec (tools/nomc_layers.txt) and flag stale
// suppressions and stale baseline entries. Diagnostics are clang-style
// (`file:line:col: warning: ... [rule-id]`); findings are suppressible
// inline or via the checked-in baseline. Output is byte-identical at any
// --jobs value. Exit status: 0 clean, 1 new findings, 2 usage or I/O error
// — so CI can require it. See docs/static_analysis.md.
//
//   nomc-lint                      lint src/ tools/ bench/ tests/
//   nomc-lint --jobs 0             same, one scan thread per hardware thread
//   nomc-lint src/phy              lint one tree
//   nomc-lint --list-rules         print the rule catalog
//   nomc-lint --write-baseline     re-admit all current findings
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/driver.hpp"

namespace {

using namespace nomc;

constexpr const char* kDefaultBaseline = "tools/nomc_lint.baseline";
constexpr const char* kDefaultLayers = "tools/nomc_layers.txt";

int usage(std::FILE* out) {
  std::fputs(
      "usage: nomc-lint [options] [path...]\n"
      "\n"
      "Lints C++ sources (.cpp/.cc/.hpp/.h/.hh) and campaign specs for\n"
      "repo-specific determinism, unit-safety, hygiene, and architecture\n"
      "invariants. Default paths: src tools bench tests (run from the repo\n"
      "root; tests/lint/fixtures is skipped — fixtures are deliberate\n"
      "violations).\n"
      "\n"
      "options:\n"
      "  --jobs <n>          parallel scan threads (0 = all hardware threads;\n"
      "                      default 1; output is identical at any value)\n"
      "  --layers <file>     module layering spec for the architecture pass\n"
      "                      (default: tools/nomc_layers.txt; the pass is\n"
      "                      skipped when the default is absent)\n"
      "  --no-layers         skip the architecture pass\n"
      "  --baseline <file>   baseline of grandfathered findings\n"
      "                      (default: tools/nomc_lint.baseline)\n"
      "  --no-baseline       ignore the baseline; report everything\n"
      "  --write-baseline    rewrite the baseline from current findings\n"
      "  --list-rules        print the rule catalog\n"
      "  --verbose           also print suppressed and baselined findings\n"
      "  --help              this text\n",
      out);
  return out == stdout ? 0 : 2;
}

[[nodiscard]] bool file_exists(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path = kDefaultBaseline;
  std::string layers_path = kDefaultLayers;
  bool layers_explicit = false;
  bool use_layers = true;
  bool use_baseline = true;
  bool write_baseline = false;
  bool verbose = false;
  int jobs = 1;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") return usage(stdout);
    if (arg == "--list-rules") {
      for (const lint::RuleInfo& rule : lint::rule_catalog()) {
        std::printf("%-24s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nomc-lint: --jobs needs a number\n");
        return 2;
      }
      char* end = nullptr;
      jobs = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == nullptr || *end != '\0' || jobs < 0) {
        std::fprintf(stderr, "nomc-lint: bad --jobs value '%s'\n", argv[i]);
        return 2;
      }
      continue;
    }
    if (arg == "--layers") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nomc-lint: --layers needs a path\n");
        return 2;
      }
      layers_path = argv[++i];
      layers_explicit = true;
      continue;
    }
    if (arg == "--no-layers") {
      use_layers = false;
      continue;
    }
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nomc-lint: --baseline needs a path\n");
        return 2;
      }
      baseline_path = argv[++i];
      continue;
    }
    if (arg == "--no-baseline") {
      use_baseline = false;
      continue;
    }
    if (arg == "--write-baseline") {
      write_baseline = true;
      continue;
    }
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "nomc-lint: unknown option '%s'\n", arg.c_str());
      return usage(stderr);
    }
    roots.push_back(arg);
  }

  lint::RunOptions options;
  options.roots = roots.empty() ? std::vector<std::string>{"src", "tools", "bench", "tests"}
                                : roots;
  options.jobs = jobs;
  if (use_layers && (layers_explicit || file_exists(layers_path.c_str()))) {
    // The default spec may legitimately be absent (a partial checkout, a
    // fixture tree); an explicitly requested one may not.
    options.layers_path = layers_path;
  }
  if (use_baseline && !write_baseline) options.baseline_path = baseline_path;

  lint::RunResult result;
  std::string error;
  if (!lint::run_lint(options, result, error)) {
    std::fprintf(stderr, "nomc-lint: %s\n", error.c_str());
    return 2;
  }

  if (write_baseline) {
    const std::string serialized = lint::Baseline::serialize(result.findings);
    std::FILE* out = std::fopen(baseline_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "nomc-lint: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    std::fwrite(serialized.data(), 1, serialized.size(), out);
    std::fclose(out);
    std::size_t entries = 0;
    for (const lint::Finding& finding : result.findings) {
      if (!finding.suppressed) ++entries;
    }
    std::printf("nomc-lint: wrote %zu baseline entr%s to %s\n", entries,
                entries == 1 ? "y" : "ies", baseline_path.c_str());
    return 0;
  }

  std::size_t fresh = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const lint::Finding& finding : result.findings) {
    if (finding.suppressed) {
      ++suppressed;
      if (verbose) {
        std::printf("%s (suppressed)\n", lint::format_diagnostic(finding).c_str());
      }
      continue;
    }
    if (finding.baselined) {
      ++baselined;
      if (verbose) {
        std::printf("%s (baselined)\n", lint::format_diagnostic(finding).c_str());
      }
      continue;
    }
    ++fresh;
    std::printf("%s\n", lint::format_diagnostic(finding).c_str());
  }

  std::printf("nomc-lint: %zu file%s, %zu new finding%s (%zu suppressed, %zu baselined)\n",
              result.file_count, result.file_count == 1 ? "" : "s", fresh, fresh == 1 ? "" : "s",
              suppressed, baselined);
  return fresh == 0 ? 0 : 1;
}
