// Microbenchmarks of the simulation substrate (google-benchmark): the hot
// paths every figure bench runs millions of times. Useful when changing the
// scheduler's heap, the medium's interference accumulation, or the BER
// model.
#include <benchmark/benchmark.h>

#include "phy/medium.hpp"
#include "phy/modulation.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace nomc;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    sim::RandomStream rng{1, 0};
    for (int i = 0; i < events; ++i) {
      scheduler.schedule_at(sim::SimTime::microseconds(rng.uniform_int(0, 1'000'000)), [] {});
    }
    scheduler.run_all();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1'000)->Arg(10'000);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    std::vector<sim::EventId> ids;
    ids.reserve(events);
    for (int i = 0; i < events; ++i) {
      ids.push_back(scheduler.schedule_at(sim::SimTime::microseconds(i), [] {}));
    }
    for (int i = 0; i < events; i += 2) scheduler.cancel(ids[i]);
    scheduler.run_all();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(10'000);

void BM_MediumSenseEnergy(benchmark::State& state) {
  const int active = static_cast<int>(state.range(0));
  phy::Medium medium;
  for (int i = 0; i < active + 1; ++i) {
    medium.add_node({static_cast<double>(i), 0.0});
  }
  for (int i = 0; i < active; ++i) {
    phy::Frame frame;
    frame.id = medium.allocate_frame_id();
    frame.src = static_cast<phy::NodeId>(i + 1);
    frame.channel = phy::Mhz{2458.0 + 3.0 * (i % 6)};
    frame.tx_power = phy::Dbm{0.0};
    frame.psdu_bytes = 100;
    medium.begin_tx(frame);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(medium.sense_energy(0, phy::Mhz{2464.0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumSenseEnergy)->Arg(4)->Arg(12)->Arg(24);

void BM_OqpskBer(benchmark::State& state) {
  double sinr = -12.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::oqpsk_ber(sinr));
    sinr += 0.01;
    if (sinr > 12.0) sinr = -12.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OqpskBer);

void BM_BinomialDraw(benchmark::State& state) {
  sim::RandomStream rng{1, 0};
  const double p = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.binomial(1000, p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialDraw);

}  // namespace

BENCHMARK_MAIN();
