// Microbenchmarks of the simulation substrate (google-benchmark): the hot
// paths every figure bench runs millions of times. Useful when changing the
// scheduler's heap, the medium's interference accumulation, or the BER
// model.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "phy/medium.hpp"
#include "phy/modulation.hpp"
#include "phy/path_loss.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace nomc;

/// A medium with `active` frames on the air and node 0 as the observer.
/// Mirrors a dense band: one frame per node, channels cycling at 3 MHz.
phy::Medium& dense_medium(int active) {
  static std::map<int, std::unique_ptr<phy::Medium>> cache;
  auto& slot = cache[active];
  if (!slot) {
    slot = std::make_unique<phy::Medium>();
    for (int i = 0; i < active + 1; ++i) {
      slot->add_node({static_cast<double>(i), 0.0});
    }
    for (int i = 0; i < active; ++i) {
      phy::Frame frame;
      frame.id = slot->allocate_frame_id();
      frame.src = static_cast<phy::NodeId>(i + 1);
      frame.channel = phy::Mhz{2458.0 + 3.0 * (i % 6)};
      frame.tx_power = phy::Dbm{0.0};
      frame.psdu_bytes = 100;
      slot->begin_tx(frame);
    }
  }
  return *slot;
}

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    sim::RandomStream rng{1, 0};
    for (int i = 0; i < events; ++i) {
      scheduler.schedule_at(sim::SimTime::microseconds(rng.uniform_int(0, 1'000'000)), [] {});
    }
    scheduler.run_all();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1'000)->Arg(10'000);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler scheduler;
    std::vector<sim::EventId> ids;
    ids.reserve(events);
    for (int i = 0; i < events; ++i) {
      ids.push_back(scheduler.schedule_at(sim::SimTime::microseconds(i), [] {}));
    }
    for (int i = 0; i < events; i += 2) scheduler.cancel(ids[i]);
    scheduler.run_all();
    benchmark::DoNotOptimize(scheduler.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(10'000);

/// Steady-state CCA cost: repeated queries about a stable active set — the
/// regime the path-loss/shadowing memoization targets, and what a saturated
/// CSMA sender does between backoffs.
void BM_MediumSenseEnergy(benchmark::State& state) {
  phy::Medium& medium = dense_medium(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(medium.sense_energy(0, phy::Mhz{2464.0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumSenseEnergy)->Arg(4)->Arg(12)->Arg(24);

/// Worst-case CCA cost: the observer moves before every query, so every
/// path-loss entry involving it recomputes (shadowing stays memoized per
/// frame). Bounds what cache invalidation costs a mobility workload.
void BM_MediumSenseEnergyCold(benchmark::State& state) {
  phy::Medium& medium = dense_medium(static_cast<int>(state.range(0)));
  double y = 0.0;
  for (auto _ : state) {
    y = y == 0.0 ? 0.5 : 0.0;
    medium.set_position(0, {0.0, y});
    benchmark::DoNotOptimize(medium.sense_energy(0, phy::Mhz{2464.0}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumSenseEnergyCold)->Arg(4)->Arg(12)->Arg(24);

/// First RSS query about a fresh frame: one uncached Box–Muller shadowing
/// draw per iteration (the path BM_MediumSenseEnergy now amortizes away).
void BM_ShadowingSample(benchmark::State& state) {
  const phy::ShadowingField field{2.5, 1};
  std::uint64_t frame_id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.sample(frame_id++, 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowingSample);

/// Trial-replication scaling: N independent seeded workloads through the
/// pool. The work per trial is pure compute, so the jobs=1 vs jobs=N ratio
/// isolates the runner's overhead and available hardware parallelism.
void BM_ParallelRunnerMap(benchmark::State& state) {
  sim::ParallelRunner runner{static_cast<int>(state.range(0))};
  constexpr int kTrials = 16;
  for (auto _ : state) {
    const auto results = runner.map(kTrials, [](int trial) {
      sim::RandomStream rng{static_cast<std::uint64_t>(trial) + 1, 0};
      double acc = 0.0;
      for (int i = 0; i < 20'000; ++i) acc += rng.uniform();
      return acc;
    });
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_ParallelRunnerMap)->Arg(1)->Arg(2)->Arg(4);

void BM_OqpskBer(benchmark::State& state) {
  double sinr = -12.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::oqpsk_ber(sinr));
    sinr += 0.01;
    if (sinr > 12.0) sinr = -12.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OqpskBer);

void BM_BinomialDraw(benchmark::State& state) {
  sim::RandomStream rng{1, 0};
  const double p = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.binomial(1000, p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialDraw);

}  // namespace

BENCHMARK_MAIN();
