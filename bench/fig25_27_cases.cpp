// Paper Figs. 22-27: the three general network configurations, each with
// per-node TX power drawn uniformly from [-22, 0] dBm:
//   Case I   (Fig. 22/25): all networks in one dense interfering region.
//   Case II  (Fig. 23/26): each network clustered in its own room.
//   Case III (Fig. 24/27): all nodes scattered randomly over a large field.
//
// Three designs are compared on each topology with the same node count:
//   ZigBee    — 4 channels at CFD=5 MHz, fixed -77 dBm CCA, 3 links/network;
//   w/o DCN   — 6 channels at CFD=3 MHz, fixed CCA, 2 links/network;
//   with DCN  — 6 channels at CFD=3 MHz, DCN everywhere.
//
// Paper's numbers (overall pkt/s): Case I 983/1326/1521 (DCN +14.7 % over
// w/o, +55.7 % over ZigBee); Case II 980/1382/1526 (+10.4 %); Case III
// 983/1282/1361 (+6.2 %, +38.4 % over ZigBee) — the weak-co-channel-RSSI
// limitation of DCN shows in Case III.
#include <cstdio>
#include <functional>

#include "common.hpp"

namespace {

using namespace nomc;
using TopologyFn = std::function<std::vector<net::NetworkSpec>(
    std::span<const phy::Mhz>, sim::RandomStream&, const net::RandomCaseConfig&)>;

double run_design(const TopologyFn& topology, const net::RandomCaseConfig& base_topo,
                  std::span<const phy::Mhz> channels, int links_per_network, net::Scheme scheme,
                  int trials, std::uint64_t seed0) {
  double overall = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(trial) * 1000003;
    net::RandomCaseConfig topo = base_topo;
    topo.links_per_network = links_per_network;
    sim::RandomStream placement{seed, 999};
    const auto specs = topology(channels, placement, topo);

    net::ScenarioConfig config;
    config.seed = seed;
    net::Scenario scenario{config};
    scenario.add_networks(specs, scheme);
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(8.0));
    overall += scenario.overall_throughput();
  }
  return overall / trials;
}

}  // namespace

int main() {
  bench::print_header("Figs. 25-27", "ZigBee vs CFD=3 w/o DCN vs CFD=3 with DCN on the three "
                                     "general configurations (random TX power in [-22, 0] dBm)");

  const auto zigbee_channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{5.0}, 4);
  const auto dcn_channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 6);
  const int trials = 5;

  // Per-case densities (Fig. 22-24): Case I packs everything into one small
  // interfering region ("deployed close to each other"); Case II puts each
  // network in its own office room along a corridor; Case III scatters nodes
  // over a large field.
  net::RandomCaseConfig dense;
  dense.region_m = 3.0;
  net::RandomCaseConfig clustered;
  clustered.region_m = 1.0;
  clustered.room_spacing_m = 1.8;
  net::RandomCaseConfig random_field;  // default 25 m field

  struct Case {
    const char* name;
    TopologyFn topology;
    net::RandomCaseConfig topo;
    const char* paper;
  };
  const Case cases[] = {
      {"Case I (dense)", net::case1_dense, dense, "983 / 1326 / 1521 (+14.7%, +55.7%)"},
      {"Case II (clustered)", net::case2_clustered, clustered,
       "980 / 1382 / 1526 (+10.4%, +55.7%)"},
      {"Case III (random)", net::case3_random, random_field,
       "983 / 1282 / 1361 (+6.2%, +38.4%)"},
  };

  stats::TablePrinter table{{"configuration", "ZigBee", "w/o DCN", "with DCN",
                             "DCN vs w/o", "DCN vs ZigBee"}};
  for (const Case& c : cases) {
    const double zigbee = run_design(c.topology, c.topo, zigbee_channels, 3,
                                     net::Scheme::kFixedCca, trials, 11);
    const double without = run_design(c.topology, c.topo, dcn_channels, 2,
                                      net::Scheme::kFixedCca, trials, 11);
    const double with = run_design(c.topology, c.topo, dcn_channels, 2, net::Scheme::kDcn,
                                   trials, 11);
    table.add_row({c.name, bench::pps(zigbee), bench::pps(without), bench::pps(with),
                   bench::pct(with / without - 1.0), bench::pct(with / zigbee - 1.0)});
    std::printf("  %s — paper: %s\n", c.name, c.paper);
  }
  std::printf("\n");
  table.print();
  std::printf("\nPaper's summary: DCN achieves 38.4%% - 55.7%% improvement over the "
              "default ZigBee design; its incremental gain over plain CFD=3 shrinks when "
              "co-channel RSSI is weak (Case III).\n");
  return 0;
}
