// Paper Fig. 8: the same CCA sweep as Fig. 6 but WITH co-channel
// competition (3 additional links on the victim's channel).
//
// Expected shape: relaxing the threshold helps only up to the minimum RSS
// of the co-channel interferers; past that point the victim transmits over
// co-channel frames, collisions destroy both packets, and received
// throughput collapses even though sent keeps rising. This asymmetry —
// inter-channel interference tolerable, co-channel fatal — is the design
// principle behind DCN.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "fig5_config.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Fig. 8", "Victim link throughput vs CCA threshold "
                                "(WITH 3 co-channel links + 4 inter-channel networks)");

  // Report the co-channel landscape first: the paper marks "Min RSS" —
  // the weakest co-channel interferer as heard by the victim sender.
  {
    net::Scenario probe;
    const bench::Fig5Setup setup = bench::build_fig5(probe, phy::Dbm{0.0}, /*cochannel_links=*/3);
    double min_rss = 0.0;
    for (const int n : setup.cochannel_networks) {
      phy::Frame f;
      f.id = probe.medium().allocate_frame_id();
      f.src = probe.sender_radio(n, 0).node();
      f.channel = bench::kVictimChannel;
      f.tx_power = phy::Dbm{0.0};
      const double rss =
          probe.medium().rss(f, probe.sender_radio(setup.victim_network, 0).node()).value;
      min_rss = std::min(min_rss, rss);
    }
    std::printf("Min co-channel RSS at victim sender: %.1f dBm\n\n", min_rss);
  }

  stats::TablePrinter table{{"CCA thr (dBm)", "sent (pkt/s)", "received (pkt/s)", "PRR"}};
  for (int thr = -95; thr <= -20; thr += 5) {
    net::Scenario scenario;
    const bench::Fig5Setup setup =
        bench::build_fig5(scenario, phy::Dbm{0.0}, /*cochannel_links=*/3);
    scenario.fixed_cca(setup.victim_network, 0).set(phy::Dbm{static_cast<double>(thr)});
    scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(8.0));

    const auto victim = scenario.network_result(setup.victim_network);
    const double sent = static_cast<double>(victim.links[0].sender.sent) / 8.0;
    table.add_row({std::to_string(thr), bench::pps(sent),
                   bench::pps(victim.links[0].throughput_pps),
                   bench::pct(victim.links[0].prr)});
  }
  table.print();
  std::printf("\nPaper: relaxing past the minimum co-channel RSS introduces "
              "co-channel collisions and throughput collapses.\n");
  return 0;
}
