// campaign_throughput — microbenchmark for the two-level campaign executor.
//
// Times exp::run_campaign end-to-end (grid expansion, point execution,
// ordered checkpointing, JSONL writes) on a fixed small sweep at several
// (jobs, point-jobs) splits, and emits the machine-readable BENCH_*.json
// format documented in docs/parallel_runner.md. One "op" is one computed
// sweep point, so ops_per_second is campaign points/second.
//
//   campaign_throughput --out BENCH_campaign.json --min-ms 500
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "exp/campaign.hpp"
#include "exp/spec.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace nomc;
using Clock = std::chrono::steady_clock;

// 4 points x 2 trials of a 2-network deployment: big enough that the pools
// have work to interleave, small enough to repeat until --min-ms.
constexpr const char* kSpecText =
    "name = bench_campaign\n"
    "topology = dense\n"
    "power = 0\n"
    "channels = 2\n"
    "warmup = 0.1\n"
    "measure = 0.3\n"
    "trials = 2\n"
    "sweep scheme = fixed dcn\n"
    "sweep cfd = 3 5\n";

std::string temp_store_path() {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string{tmpdir != nullptr ? tmpdir : "/tmp"} + "/bench_campaign_store.jsonl";
}

struct BenchResult {
  std::string name;
  long long points = 0;
  double ns_per_point = 0.0;
};

BenchResult measure_split(const exp::CampaignSpec& spec, const std::string& store,
                          int jobs, int point_jobs, double min_ms) {
  exp::CampaignOptions options;
  options.mode = exp::CampaignOptions::Mode::kOverwrite;
  options.jobs = jobs;
  options.point_jobs = point_jobs;
  options.quiet = true;

  const long long grid = static_cast<long long>(exp::expand_grid(spec).size());
  long long points = 0;
  const auto start = Clock::now();
  double elapsed_ms = 0.0;
  do {
    exp::CampaignStats stats;
    std::string error;
    if (!exp::run_campaign(spec, store, options, &stats, error)) {
      std::fprintf(stderr, "run_campaign failed: %s\n", error.c_str());
      std::exit(1);
    }
    points += grid;
    elapsed_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  } while (elapsed_ms < min_ms);

  BenchResult result;
  result.name = "campaign_4pt/jobs=" + std::to_string(jobs) +
                ",point_jobs=" + std::to_string(point_jobs);
  result.points = points;
  result.ns_per_point = elapsed_ms * 1e6 / static_cast<double>(points);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_string("out", "BENCH_campaign.json", "output JSON path");
  args.add_double("min-ms", 500.0, "minimum measured wall time per split (ms)");
  if (const auto exit_code = cli::parse_standard(args, argc, argv, argv[0])) {
    return *exit_code;
  }
  const double min_ms = args.get_double("min-ms");

  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::parse_campaign(kSpecText, spec, spec_error)) {
    std::fprintf(stderr, "embedded spec: %s\n", spec_error.str().c_str());
    return 1;
  }
  const std::string store = temp_store_path();

  // Serial baseline, trial-level only, point-level only, and an even split —
  // deduplicated so a 1-core machine measures just the baseline.
  const int hw = sim::resolve_jobs(0);
  std::vector<std::pair<int, int>> splits{{1, 1}};
  if (hw > 1) {
    splits.emplace_back(hw, 1);
    splits.emplace_back(1, hw);
    const int half = hw / 2;
    if (half > 1) splits.emplace_back(half, 2);
  }

  std::vector<BenchResult> results;
  for (const auto& [jobs, point_jobs] : splits) {
    results.push_back(measure_split(spec, store, jobs, point_jobs, min_ms));
  }
  std::remove(store.c_str());
  std::remove((store + ".timing").c_str());

  std::FILE* out = std::fopen(args.get_string("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.get_string("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"tool\": \"campaign_throughput\",\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iterations\": %lld, \"ns_per_op\": %.2f, "
                 "\"ops_per_second\": %.1f}%s\n",
                 r.name.c_str(), r.points, r.ns_per_point, 1e9 / r.ns_per_point,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  for (const BenchResult& r : results) {
    std::printf("%-40s %8lld points  %10.2f ms/point\n", r.name.c_str(), r.points,
                r.ns_per_point / 1e6);
  }
  std::printf("\nwritten to %s\n", args.get_string("out").c_str());
  return 0;
}
