// Paper Fig. 30 (§VII-B): DCN's relative gain grows with bandwidth. With a
// wider band there are more middle-of-band networks — the ones with the
// most inter-channel interference to convert into concurrency — so the
// aggregate relaxation gain rises (paper: +10 % at 12 MHz / 5 channels,
// +13 % at 18 MHz / 7 channels). TX power fixed at 0 dBm to isolate the
// bandwidth effect, as in the paper.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Fig. 30", "DCN gain vs spectrum bandwidth (CFD=3 MHz, 0 dBm)");

  bench::BandRunParams params;
  params.trials = 5;

  stats::TablePrinter table{{"band (MHz)", "channels", "w/o DCN (pkt/s)", "with DCN (pkt/s)",
                             "gain"}};
  for (const int channels_count : {5, 6, 7}) {
    const auto channels =
        phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, channels_count);
    const bench::BandResult without = bench::run_band(channels, net::Scheme::kFixedCca, params);
    const bench::BandResult with = bench::run_band(channels, net::Scheme::kDcn, params);
    table.add_row({std::to_string(3 * (channels_count - 1) + 3), std::to_string(channels_count),
                   bench::pps(without.overall_pps), bench::pps(with.overall_pps),
                   bench::pct(with.overall_pps / without.overall_pps - 1.0)});
  }
  table.print();

  // Per-network view for the widest band: middle networks gain most.
  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 7);
  const bench::BandResult without = bench::run_band(channels, net::Scheme::kFixedCca, params);
  const bench::BandResult with = bench::run_band(channels, net::Scheme::kDcn, params);
  std::printf("\n18 MHz band, per network (N0..N6 across the band):\n");
  stats::TablePrinter detail{{"network", "w/o (pkt/s)", "with (pkt/s)", "gain"}};
  for (std::size_t i = 0; i < channels.size(); ++i) {
    detail.add_row({"N" + std::to_string(i), bench::pps(without.per_network_pps[i]),
                    bench::pps(with.per_network_pps[i]),
                    bench::pct(with.per_network_pps[i] / without.per_network_pps[i] - 1.0)});
  }
  detail.print();
  std::printf("\nPaper: wider band -> more relaxation gain; middle networks improve most.\n");
  return 0;
}
