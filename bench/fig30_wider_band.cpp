// Paper Fig. 30 (§VII-B): DCN's relative gain grows with bandwidth. With a
// wider band there are more middle-of-band networks — the ones with the
// most inter-channel interference to convert into concurrency — so the
// aggregate relaxation gain rises (paper: +10 % at 12 MHz / 5 channels,
// +13 % at 18 MHz / 7 channels). TX power fixed at 0 dBm to isolate the
// bandwidth effect, as in the paper.
//
// This bench delegates to the experiment-campaign engine: the sweep below
// is the same spec as examples/campaigns/fig30_wider_band.campaign
// (embedded so the binary is self-contained), expanded and executed through
// exp::run_point — one consumer of the sweep grid, no hand-rolled loops.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "common.hpp"
#include "exp/campaign.hpp"
#include "exp/spec.hpp"
#include "sim/parallel.hpp"

namespace {

constexpr const char* kSpecText = R"(
# Embedded copy of examples/campaigns/fig30_wider_band.campaign.
name = fig30_wider_band
cfd = 3
power = 0
trials = 5
sweep channels = 5 6 7
sweep scheme = fixed dcn
)";

}  // namespace

int main() {
  using namespace nomc;
  bench::print_header("Fig. 30", "DCN gain vs spectrum bandwidth (CFD=3 MHz, 0 dBm)");

  exp::CampaignSpec spec;
  exp::SpecError error;
  if (!exp::parse_campaign(kSpecText, spec, error)) {
    std::fprintf(stderr, "embedded spec: %s\n", error.str().c_str());
    return 1;
  }

  // (channels, scheme) -> per-point result, filled in grid order.
  std::map<std::pair<int, std::string>, exp::PointResult> results;
  sim::ParallelRunner runner{1};
  for (const exp::SweepPoint& point : exp::expand_grid(spec)) {
    results[{point.params.channels, point.params.scheme}] = exp::run_point(point.params, runner);
  }

  stats::TablePrinter table{{"band (MHz)", "channels", "w/o DCN (pkt/s)", "with DCN (pkt/s)",
                             "gain"}};
  for (const int channels_count : {5, 6, 7}) {
    const exp::PointResult& without = results.at({channels_count, "fixed"});
    const exp::PointResult& with = results.at({channels_count, "dcn"});
    table.add_row({std::to_string(3 * (channels_count - 1) + 3), std::to_string(channels_count),
                   bench::pps(without.overall_pps), bench::pps(with.overall_pps),
                   bench::pct(with.overall_pps / without.overall_pps - 1.0)});
  }
  table.print();

  // Per-network view for the widest band: middle networks gain most.
  const exp::PointResult& without = results.at({7, "fixed"});
  const exp::PointResult& with = results.at({7, "dcn"});
  std::printf("\n18 MHz band, per network (N0..N6 across the band):\n");
  stats::TablePrinter detail{{"network", "w/o (pkt/s)", "with (pkt/s)", "gain"}};
  for (std::size_t i = 0; i < without.pps.size(); ++i) {
    detail.add_row({"N" + std::to_string(i), bench::pps(without.pps[i]),
                    bench::pps(with.pps[i]),
                    bench::pct(with.pps[i] / without.pps[i] - 1.0)});
  }
  detail.print();
  std::printf("\nPaper: wider band -> more relaxation gain; middle networks improve most.\n");
  return 0;
}
