// EXTENSION — the related-work comparison the paper argues against:
// TMCP-style orthogonal tree partitioning (Wu et al., InfoCom'08) vs the
// non-orthogonal DCN design, on a convergecast data-collection workload.
//
// Same ~30 sensors around one multi-radio sink, saturating demand:
//   * TMCP-style: 4 trees on 5 MHz-spaced channels, fixed -77 dBm CCA —
//     "find fully orthogonal channels first, then partition";
//   * non-orth. : 6 trees on 3 MHz-spaced channels, fixed CCA (no DCN);
//   * DCN       : 6 trees on 3 MHz-spaced channels, CCA-Adjustors.
// More trees = fewer sensors contending per channel AND less multi-hop
// forwarding per tree, so collection goodput rises — if the inter-channel
// interference is handled, which is DCN's job.
#include <cstdio>

#include "collect/collection.hpp"
#include "common.hpp"
#include "stats/summary.hpp"

namespace {

using namespace nomc;

struct DesignResult {
  stats::SummaryStats goodput;
  int max_depth = 0;
};

DesignResult run_design(int channel_count, double cfd, net::Scheme scheme, int total_sensors,
                        int trials) {
  DesignResult result;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 31 + static_cast<std::uint64_t>(trial) * 1000003;
    collect::CollectionConfig config;
    config.scheme = scheme;
    config.nodes_per_tree = total_sensors / channel_count;
    config.report_period = sim::SimTime::milliseconds(25);  // saturating demand
    const auto channels =
        phy::evenly_spaced(bench::kBandStart, phy::Mhz{cfd}, channel_count);
    collect::CollectionScenario scenario{channels, config, seed};
    result.goodput.add(
        scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(8.0)));
    for (const auto& tree : scenario.trees()) {
      result.max_depth = std::max(result.max_depth, tree->max_depth());
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header("Extension: data collection (TMCP comparison)",
                      "Convergecast goodput at the sink, 24 sensors, 15 MHz band, "
                      "40 readings/s offered per sensor");

  const int sensors = 24;
  const int trials = 5;
  const DesignResult tmcp =
      run_design(4, 5.0, net::Scheme::kFixedCca, sensors, trials);
  const DesignResult packed =
      run_design(6, 3.0, net::Scheme::kFixedCca, sensors, trials);
  const DesignResult dcn = run_design(6, 3.0, net::Scheme::kDcn, sensors, trials);

  stats::TablePrinter table{{"design", "trees", "sink goodput (pkt/s)", "±95% CI",
                             "max depth"}};
  table.add_row({"TMCP-style (4ch @ 5MHz, fixed)", "4",
                 stats::TablePrinter::num(tmcp.goodput.mean(), 1),
                 stats::TablePrinter::num(tmcp.goodput.ci95_half_width(), 1),
                 std::to_string(tmcp.max_depth)});
  table.add_row({"non-orth. (6ch @ 3MHz, fixed)", "6",
                 stats::TablePrinter::num(packed.goodput.mean(), 1),
                 stats::TablePrinter::num(packed.goodput.ci95_half_width(), 1),
                 std::to_string(packed.max_depth)});
  table.add_row({"non-orth. + DCN (6ch @ 3MHz)", "6",
                 stats::TablePrinter::num(dcn.goodput.mean(), 1),
                 stats::TablePrinter::num(dcn.goodput.ci95_half_width(), 1),
                 std::to_string(dcn.max_depth)});
  table.print();
  std::printf("\nDCN vs TMCP-style: %+.1f%%   DCN vs plain non-orthogonal: %+.1f%%\n",
              100.0 * (dcn.goodput.mean() / tmcp.goodput.mean() - 1.0),
              100.0 * (dcn.goodput.mean() / packed.goodput.mean() - 1.0));
  std::printf("More trees shrink both per-channel contention and forwarding depth;\n"
              "DCN supplies the CCA behaviour that makes the extra trees usable.\n");
  return 0;
}
