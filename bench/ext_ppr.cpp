// EXTENSION — §VII-A's "online dynamic recovery scheme", implemented as a
// running protocol (src/ppr) rather than the paper's offline recoverability
// analysis (Figs. 28-29, bench fig28_29_recovery).
//
// Same severe-asymmetry scenario as Fig. 28: a -22 dBm victim link against
// 0 dBm interferers leaking from ±3 MHz right next to the receiver, CCA
// fully relaxed. Three link configurations are compared:
//   * no recovery (the paper's measured baseline),
//   * PPR always on,
//   * PPR behind the adaptive arm/disarm gate (plus a clean link showing
//     the gate keeps overhead at zero when nothing needs repairing).
#include <cstdio>
#include <memory>
#include <optional>

#include "common.hpp"
#include "ppr/ppr.hpp"

namespace {

using namespace nomc;

struct PprRun {
  double sent_pps = 0.0;
  double delivered_pps = 0.0;   ///< intact + recovered
  double raw_prr = 0.0;
  double effective_prr = 0.0;
  double repair_overhead = 0.0;  ///< repair bytes / data bytes sent
  bool armed = false;
};

enum class Mode { kNone, kAlways, kAdaptive };

PprRun run(Mode mode, bool jammed, std::uint64_t seed) {
  net::ScenarioConfig config;
  config.seed = seed;
  net::Scenario scenario{config};

  const phy::Mhz channel{2464.0};
  const int victim = scenario.add_network(channel, net::Scheme::kFixedCca);
  net::LinkSpec link;
  link.sender_pos = {0.0, 0.0};
  link.receiver_pos = {0.0, 2.0};
  link.tx_power = phy::Dbm{-22.0};
  scenario.add_link(victim, link);
  // Relaxed past inter-channel leakage, still defers to co-channel (NACKs).
  scenario.fixed_cca(victim, 0).set(phy::Dbm{-55.0});

  if (jammed) {
    const struct {
      double dx, dy, df;
    } interferers[] = {{1.4, 2.0, +3.0}, {-1.4, 2.0, -3.0}};
    for (const auto& it : interferers) {
      const int n = scenario.add_network(channel + phy::Mhz{it.df}, net::Scheme::kFixedCca);
      for (int l = 0; l < 2; ++l) {
        net::LinkSpec i_link;
        i_link.sender_pos = {it.dx + 0.4 * l, it.dy};
        i_link.receiver_pos = {it.dx + 0.4 * l, it.dy + 2.0};
        i_link.tx_power = phy::Dbm{0.0};
        scenario.add_link(n, i_link);
      }
    }
  }

  ppr::PprConfig ppr_config;
  ppr_config.adaptive = mode == Mode::kAdaptive;
  std::optional<ppr::PprSender> sender;
  std::optional<ppr::PprReceiver> receiver;
  std::uint64_t recovered_in_window = 0;
  const sim::SimTime warmup = sim::SimTime::seconds(1.0);
  if (mode != Mode::kNone) {
    sender.emplace(scenario.sender_mac(victim, 0), ppr_config);
    receiver.emplace(scenario.receiver_mac(victim, 0), ppr_config,
                     [&recovered_in_window, &scenario, warmup](const phy::RxResult&) {
                       if (scenario.scheduler().now() >= warmup) ++recovered_in_window;
                     });
  }

  const double measure_s = 10.0;
  scenario.run(warmup, sim::SimTime::seconds(measure_s));

  const auto result = scenario.network_result(victim);
  PprRun out;
  out.sent_pps = static_cast<double>(result.links[0].sender.sent) / measure_s;
  out.delivered_pps =
      result.links[0].throughput_pps + static_cast<double>(recovered_in_window) / measure_s;
  out.raw_prr = result.links[0].prr;
  out.effective_prr = out.sent_pps > 0.0 ? out.delivered_pps / out.sent_pps : 1.0;
  if (sender.has_value()) {
    const double data_bytes = static_cast<double>(result.links[0].sender.sent) * 100.0;
    out.repair_overhead =
        data_bytes > 0.0
            ? static_cast<double>(sender->stats().repair_bytes_sent) / data_bytes
            : 0.0;
  }
  out.armed = receiver.has_value() ? receiver->armed() : false;
  return out;
}

}  // namespace

int main() {
  bench::print_header("Extension: online PPR (§VII-A)",
                      "Running block-repair protocol on the Fig. 28 scenario "
                      "(-22 dBm link vs 0 dBm inter-channel interferers, relaxed CCA)");

  stats::TablePrinter table{{"link / recovery", "sent (pkt/s)", "delivered (pkt/s)",
                             "raw PRR", "effective PRR", "repair overhead"}};
  struct Row {
    const char* name;
    Mode mode;
    bool jammed;
  };
  const Row rows[] = {
      {"jammed / none", Mode::kNone, true},
      {"jammed / PPR", Mode::kAlways, true},
      {"jammed / adaptive PPR", Mode::kAdaptive, true},
      {"clean / adaptive PPR", Mode::kAdaptive, false},
  };
  for (const Row& row : rows) {
    const PprRun result = run(row.mode, row.jammed, 42);
    table.add_row({row.name, bench::pps(result.sent_pps), bench::pps(result.delivered_pps),
                   bench::pct(result.raw_prr), bench::pct(result.effective_prr),
                   bench::pct(result.repair_overhead)});
  }
  table.print();
  std::printf("\nPaper Fig. 28: recovery lifts the 'Recoverable' curve to ~sent, PRR -> ~100%%.\n"
              "The adaptive gate (paper's future direction) matches always-on recovery under\n"
              "loss and spends nothing on clean links.\n");
  return 0;
}
