// Paper Figs. 6-7: sweeping the victim link's CCA threshold in the Fig. 5
// configuration (4 neighbouring-channel interferer networks, NO co-channel
// competition).
//
// Expected shape: with a conservative threshold the sender backs off on
// tolerable inter-channel energy and throughput is depressed; relaxing the
// threshold raises sent AND received in lockstep (PRR stays ~100 % — the
// interference is inter-channel, hence tolerable), and the OVERALL
// throughput across all five networks grows too (Fig. 7): the concurrency
// is genuinely additive, not stolen from the neighbours.
#include <cstdio>

#include "common.hpp"
#include "fig5_config.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Figs. 6-7",
                      "Victim link + overall throughput vs CCA threshold "
                      "(no co-channel interference; interferers at CFD=±3, ±6 MHz)");

  stats::TablePrinter table{{"CCA thr (dBm)", "sent (pkt/s)", "received (pkt/s)", "PRR",
                             "overall (pkt/s)"}};
  for (int thr = -95; thr <= -20; thr += 5) {
    net::Scenario scenario;
    const bench::Fig5Setup setup = bench::build_fig5(scenario, phy::Dbm{0.0});
    scenario.fixed_cca(setup.victim_network, 0).set(phy::Dbm{static_cast<double>(thr)});
    scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(8.0));

    const auto victim = scenario.network_result(setup.victim_network);
    const double sent = static_cast<double>(victim.links[0].sender.sent) / 8.0;
    const double received = victim.links[0].throughput_pps;
    table.add_row({std::to_string(thr), bench::pps(sent), bench::pps(received),
                   bench::pct(victim.links[0].prr), bench::pps(scenario.overall_throughput())});
  }
  table.print();
  std::printf("\nPaper: default -77 dBm is conservative; relaxing raises link "
              "throughput with PRR ~100%%, and overall throughput grows too.\n");
  return 0;
}
