// Paper Figs. 20-21: impact of transmission power on DCN. Six networks at
// CFD=3 MHz (15 MHz band), DCN everywhere; the central network N0's senders
// sweep their TX power from -33 dBm to 0 dBm while every other node stays
// at full power.
//
// Expected shape:
//   * N0's throughput grows with its power (Fig. 20) in two regimes: below
//     ~-15 dBm better SINR lifts PRR; above it, the louder co-channel
//     packets let N0's CCA-Adjustors settle HIGHER thresholds (Eq. 4), which
//     unlocks more inter-channel concurrency;
//   * the other networks are not hurt by N0's power growth (Fig. 21) —
//     CFD=3 MHz tolerates the interference.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Figs. 20-21", "DCN under asymmetric power: central network N0 sweeps "
                                     "TX power, others at 0 dBm (6 networks, CFD=3 MHz)");

  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 6);
  const int central = 3;  // central-frequency network ("N0" in the paper)
  bench::BandRunParams params;

  stats::TablePrinter table{{"N0 power (dBm)", "N0 (pkt/s)", "N0 PRR", "others total (pkt/s)"}};
  for (const double power : {-33.0, -22.0, -15.0, -11.0, -6.0, -3.0, 0.0}) {
    double n0 = 0.0;
    double n0_prr = 0.0;
    double others = 0.0;
    for (int trial = 0; trial < params.trials; ++trial) {
      const std::uint64_t seed = params.seed + static_cast<std::uint64_t>(trial) * 1000003;
      sim::RandomStream placement{seed, 999};
      auto specs = net::case1_dense(channels, placement, params.topology);
      for (net::LinkSpec& link : specs[central].links) link.tx_power = phy::Dbm{power};

      net::ScenarioConfig config;
      config.seed = seed;
      net::Scenario scenario{config};
      scenario.add_networks(specs, net::Scheme::kDcn);
      scenario.run(params.warmup, params.measure);

      const auto result = scenario.network_result(central);
      n0 += result.throughput_pps;
      double prr_sum = 0.0;
      for (const auto& link : result.links) prr_sum += link.prr;
      n0_prr += prr_sum / static_cast<double>(result.links.size());
      others += scenario.overall_throughput() - result.throughput_pps;
    }
    table.add_row({stats::TablePrinter::num(power, 0), bench::pps(n0 / params.trials),
                   bench::pct(n0_prr / params.trials), bench::pps(others / params.trials)});
  }
  table.print();
  std::printf("\nPaper: N0 grows with power (PRR-limited below ~-15 dBm, CCA-relaxation-"
              "limited above); other networks are unaffected at CFD=3 MHz.\n");
  return 0;
}
