// Paper Table I: fairness of DCN across the six networks of the 15 MHz
// band. The middle networks face the most inter-channel interference, the
// edge networks the least, yet the paper measures only ~4 % throughput
// spread — DCN does not drive any network against the others.
//
// Secondary table: ablation of the CCA-Adjustor's safety margin
// (DESIGN.md §8) — how far below the minimum co-channel RSSI the threshold
// is parked.
#include <cstdio>

#include "common.hpp"
#include "stats/fairness.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Table I", "Per-network throughput fairness under DCN "
                                 "(6 networks, CFD=3 MHz, 15 MHz band)");

  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 6);
  bench::BandRunParams params;
  params.trials = 5;
  const bench::BandResult result = bench::run_band(channels, net::Scheme::kDcn, params);

  stats::TablePrinter table{{"network", "throughput (pkt/s)"}};
  for (std::size_t i = 0; i < result.per_network_pps.size(); ++i) {
    table.add_row({"N" + std::to_string(i), bench::pps(result.per_network_pps[i])});
  }
  table.print();
  std::printf("\nRelative spread: %.1f%% (paper: ~4%%)   Jain index: %.3f\n",
              100.0 * stats::relative_spread(result.per_network_pps),
              stats::jain_index(result.per_network_pps));

  std::printf("\nAblation — CCA-Adjustor safety margin:\n");
  stats::TablePrinter ablation{{"margin (dB)", "overall (pkt/s)", "spread", "Jain"}};
  for (const double margin : {0.0, 2.0, 4.0, 8.0}) {
    double overall = 0.0;
    std::vector<double> per(channels.size(), 0.0);
    for (int trial = 0; trial < params.trials; ++trial) {
      const std::uint64_t seed = params.seed + static_cast<std::uint64_t>(trial) * 1000003;
      sim::RandomStream placement{seed, 999};
      const auto specs = net::case1_dense(channels, placement, params.topology);
      net::ScenarioConfig config;
      config.seed = seed;
      config.dcn.safety_margin = phy::Db{margin};
      net::Scenario scenario{config};
      scenario.add_networks(specs, net::Scheme::kDcn);
      scenario.run(params.warmup, params.measure);
      overall += scenario.overall_throughput();
      const auto pps = scenario.network_throughputs();
      for (std::size_t i = 0; i < per.size(); ++i) per[i] += pps[i];
    }
    for (double& v : per) v /= params.trials;
    ablation.add_row({stats::TablePrinter::num(margin, 0),
                      bench::pps(overall / params.trials),
                      bench::pct(stats::relative_spread(per)),
                      stats::TablePrinter::num(stats::jain_index(per), 3)});
  }
  ablation.print();
  return 0;
}
