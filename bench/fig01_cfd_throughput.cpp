// Paper Fig. 1: aggregate throughput of a 12 MHz band packed at different
// channel frequency distances, under the DEFAULT ZigBee MAC (fixed −77 dBm
// CCA). The paper's observations to reproduce:
//   * orthogonal CFD=9 MHz wastes the band (1 channel),
//   * ZigBee's CFD=5 MHz is conservative,
//   * throughput peaks at CFD=3 MHz,
//   * CFD=2 MHz declines again — inter-channel interference bites.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Fig. 1", "Bandwidth throughput vs channel frequency distance "
                                "(12 MHz band, default ZigBee CCA = -77 dBm)");

  stats::TablePrinter table{{"CFD (MHz)", "channels", "overall (pkt/s)", "per-network (pkt/s)"}};
  double best_cfd = 0.0;
  double best_pps = -1.0;
  for (const double cfd : {9.0, 5.0, 4.0, 3.0, 2.0}) {
    const auto channels = bench::motivation_channels(cfd);
    const bench::BandResult result = bench::run_band(channels, net::Scheme::kFixedCca);

    std::string per_network;
    for (double v : result.per_network_pps) {
      if (!per_network.empty()) per_network += " ";
      per_network += stats::TablePrinter::num(v, 0);
    }
    table.add_row({stats::TablePrinter::num(cfd, 0),
                   std::to_string(channels.size()),
                   bench::pps(result.overall_pps), per_network});
    if (result.overall_pps > best_pps) {
      best_pps = result.overall_pps;
      best_cfd = cfd;
    }
  }
  table.print();
  std::printf("\nBest CFD: %.0f MHz (paper: 3 MHz)\n", best_cfd);
  return 0;
}
