// Paper Figs. 9-10: effect of the victim link's transmission power on the
// CCA-relaxation gain (Fig. 5 configuration, interferers fixed at 0 dBm).
//
// Expected shape: relaxing the threshold improves throughput at every power
// level (Fig. 9); the PRR (Fig. 10) stays ~100 % for powers >= -15 dBm,
// is above ~80 % even at -22 dBm against 0 dBm interferers, and degrades
// for the extreme -33 dBm case — the receiver's capture capability bounds
// how asymmetric the concurrency can get.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "fig5_config.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Figs. 9-10", "Victim link throughput and PRR vs CCA threshold "
                                    "at different victim TX powers (interferers 0 dBm)");

  const std::vector<double> powers = {-8.0, -11.0, -15.0, -22.0, -33.0};
  std::vector<std::string> headers = {"CCA thr (dBm)"};
  for (double p : powers) headers.push_back(stats::TablePrinter::num(p, 0) + " dBm");

  stats::TablePrinter throughput{headers};
  stats::TablePrinter prr{headers};
  for (int thr = -95; thr <= -20; thr += 10) {
    std::vector<std::string> trow = {std::to_string(thr)};
    std::vector<std::string> prow = {std::to_string(thr)};
    for (const double power : powers) {
      net::Scenario scenario;
      const bench::Fig5Setup setup = bench::build_fig5(scenario, phy::Dbm{power});
      scenario.fixed_cca(setup.victim_network, 0).set(phy::Dbm{static_cast<double>(thr)});
      scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(6.0));
      const auto victim = scenario.network_result(setup.victim_network);
      trow.push_back(bench::pps(victim.links[0].throughput_pps));
      prow.push_back(bench::pct(victim.links[0].prr));
    }
    throughput.add_row(trow);
    prr.add_row(prow);
  }
  std::printf("Fig. 9 — victim throughput (pkt/s):\n");
  throughput.print();
  std::printf("\nFig. 10 — victim PRR:\n");
  prr.print();
  std::printf("\nPaper: PRR 100%% for powers >= -15 dBm, >80%% at -22 dBm, "
              "degraded at -33 dBm; relaxing always helps throughput.\n");
  return 0;
}
