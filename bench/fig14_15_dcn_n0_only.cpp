// Paper Figs. 14-15: apply DCN only on network N0 (the median-frequency
// network of five) and compare against the all-fixed baseline, for
// CFD = 2 and 3 MHz.
//
// Expected shape: N0's throughput improves substantially (paper: ~27 %) —
// it stops deferring to its neighbours' inter-channel energy; the OTHER
// four networks (still on the fixed threshold) lose a little (paper: ~5 %)
// because N0's increased airtime is extra energy in their CCA reads.
//
// Secondary table: ablation of DCN's updating window T_U on the same
// scenario (DESIGN.md §8).
#include <cstdio>

#include "common.hpp"

namespace {

using namespace nomc;

struct Fig14Row {
  double n0_without, n0_with;
  double others_without, others_with;
};

Fig14Row run_cfd(double cfd_mhz, const bench::BandRunParams& params) {
  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{cfd_mhz}, 5);
  const int median = 2;  // N0 = the median-frequency network (Fig. 13)

  const bench::BandResult without =
      bench::run_band(channels, net::Scheme::kFixedCca, params);
  const bench::BandResult with = bench::run_band_mixed(
      channels,
      [median](int i) { return i == median ? net::Scheme::kDcn : net::Scheme::kFixedCca; },
      params);

  Fig14Row row{};
  row.n0_without = without.per_network_pps[median];
  row.n0_with = with.per_network_pps[median];
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (static_cast<int>(i) == median) continue;
    row.others_without += without.per_network_pps[i];
    row.others_with += with.per_network_pps[i];
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header("Figs. 14-15", "DCN applied only on the median network N0 "
                                     "(5 networks, CFD = 2 and 3 MHz)");

  stats::TablePrinter table{{"CFD (MHz)", "N0 w/o (pkt/s)", "N0 with (pkt/s)", "N0 gain",
                             "others w/o", "others with", "others change"}};
  bench::BandRunParams params;
  for (const double cfd : {2.0, 3.0}) {
    const Fig14Row row = run_cfd(cfd, params);
    table.add_row({stats::TablePrinter::num(cfd, 0), bench::pps(row.n0_without),
                   bench::pps(row.n0_with),
                   bench::pct(row.n0_with / row.n0_without - 1.0),
                   bench::pps(row.others_without), bench::pps(row.others_with),
                   bench::pct(row.others_with / row.others_without - 1.0)});
  }
  table.print();
  std::printf("\nPaper: N0 gains ~27%% at both CFDs; other networks lose ~5%%.\n");

  // Ablation: the updating window T_U (CFD = 3 MHz scenario).
  std::printf("\nAblation — updating window T_U (CFD=3 MHz, DCN on N0):\n");
  stats::TablePrinter ablation{{"T_U (s)", "N0 with DCN (pkt/s)"}};
  for (const double tu : {1.0, 3.0, 6.0, 12.0}) {
    bench::BandRunParams p;
    p.topology = params.topology;
    const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 5);
    // Re-run with a customized DCN config.
    double n0 = 0.0;
    for (int trial = 0; trial < p.trials; ++trial) {
      const std::uint64_t seed = p.seed + static_cast<std::uint64_t>(trial) * 1000003;
      sim::RandomStream placement{seed, 999};
      const auto specs = net::case1_dense(channels, placement, p.topology);
      net::ScenarioConfig config;
      config.seed = seed;
      config.dcn.t_update = sim::SimTime::seconds(tu);
      net::Scenario scenario{config};
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const int n = scenario.add_network(
            specs[i].channel, i == 2 ? net::Scheme::kDcn : net::Scheme::kFixedCca);
        for (const net::LinkSpec& link : specs[i].links) scenario.add_link(n, link);
      }
      scenario.run(p.warmup, p.measure);
      n0 += scenario.network_result(2).throughput_pps;
    }
    ablation.add_row({stats::TablePrinter::num(tu, 0), bench::pps(n0 / p.trials)});
  }
  ablation.print();
  return 0;
}
