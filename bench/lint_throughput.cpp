// lint_throughput — microbenchmark for the nomc-lint whole-program driver
// (lint::run_lint), emitted in the BENCH_*.json format documented in
// docs/parallel_runner.md.
//
// One op is one full repo scan: collect files, tokenize + per-file rules in
// parallel, then the serial whole-program passes (include-graph rules,
// stale-suppress, baseline). Benchmarks scan_jobs_{1,2,4,8} show how the
// per-file stage scales on the ParallelRunner while the output stays
// byte-identical; files_per_second and mb_per_second put the numbers in
// repo-size terms.
//
//   lint_throughput --out BENCH_lint.json --min-ms 300
//   lint_throughput --smoke --out BENCH_lint_smoke.json
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "lint/driver.hpp"

namespace {

using namespace nomc;
using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  long long ops = 0;
  double ns_per_op = 0.0;
};

lint::RunOptions repo_options(int jobs) {
  lint::RunOptions options;
  const std::string root{NOMC_LINT_REPO_ROOT};
  options.roots = {root + "/src", root + "/tools", root + "/bench", root + "/tests"};
  options.root_prefix = root;
  options.layers_path = root + "/tools/nomc_layers.txt";
  options.baseline_path = root + "/tools/nomc_lint.baseline";
  options.jobs = jobs;
  return options;
}

/// Repeat full scans until `min_ms` of wall time has elapsed.
BenchResult measure_scan(int jobs, double min_ms, std::size_t& file_count) {
  BenchResult result;
  result.name = "scan_jobs_" + std::to_string(jobs);
  const auto begin = Clock::now();
  double elapsed_ns = 0.0;
  while (elapsed_ns < min_ms * 1e6) {
    lint::RunResult run;
    std::string error;
    if (!lint::run_lint(repo_options(jobs), run, error)) {
      std::fprintf(stderr, "lint run failed: %s\n", error.c_str());
      std::exit(1);
    }
    file_count = run.file_count;
    ++result.ops;
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - begin).count());
  }
  result.ns_per_op = elapsed_ns / static_cast<double>(result.ops);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_string("out", "BENCH_lint.json", "output JSON path");
  args.add_double("min-ms", 300.0, "minimum measured wall time per benchmark (ms)");
  args.add_flag("smoke", "tiny budget (CI smoke mode)");
  if (const auto exit_code = cli::parse_standard(args, argc, argv, argv[0])) {
    return *exit_code;
  }
  const double min_ms = args.get_flag("smoke") ? 1.0 : args.get_double("min-ms");

  std::vector<BenchResult> results;
  std::size_t file_count = 0;
  for (const int jobs : {1, 2, 4, 8}) {
    results.push_back(measure_scan(jobs, min_ms, file_count));
  }

  std::FILE* out = std::fopen(args.get_string("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.get_string("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"tool\": \"lint_throughput\",\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"files_per_scan\": %zu,\n", file_count);
  std::fprintf(out,
               "  \"note\": \"one op is one full repo scan through lint::run_lint; the "
               "whole-program passes are serial, so jobs scaling bounds out at the "
               "per-file share of the scan\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iterations\": %lld, \"ns_per_op\": %.2f, "
                 "\"ops_per_second\": %.1f}%s\n",
                 r.name.c_str(), r.ops, r.ns_per_op, 1e9 / r.ns_per_op,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  for (const BenchResult& r : results) {
    std::printf("%-24s %8lld ops  %12.2f ms/op  (%7.1f files/s)\n", r.name.c_str(), r.ops,
                r.ns_per_op / 1e6, static_cast<double>(file_count) / (r.ns_per_op / 1e9));
  }
  std::printf("\nwritten to %s\n", args.get_string("out").c_str());
  return 0;
}
