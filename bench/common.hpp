// Shared plumbing for the figure benches: standard band scenarios matching
// the paper's testbed layout, and result formatting.
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "sim/parallel.hpp"
#include "stats/table.hpp"

namespace nomc::bench {

/// The paper's evaluation band starts here (§VI: "from 2458MHz").
inline constexpr phy::Mhz kBandStart{2458.0};

struct BandRunParams {
  net::RandomCaseConfig topology = net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
  sim::SimTime warmup = sim::SimTime::seconds(2.0);
  sim::SimTime measure = sim::SimTime::seconds(8.0);
  std::uint64_t seed = 1;
  /// Independent testbed layouts averaged per data point (the paper reports
  /// time-averaged testbed runs; seeds play the role of re-deployments).
  int trials = 3;
  /// Worker threads for the trial replication (1 = serial on the calling
  /// thread, 0 = all hardware threads). Results are bit-identical across
  /// job counts: trials are merged in seed order, not completion order.
  int jobs = 1;
  phy::Dbm fixed_cca = mac::kZigbeeDefaultCcaThreshold;
};

/// Seed of trial `trial`: distinct deployments, reproducible per data point.
inline std::uint64_t trial_seed(const BandRunParams& params, int trial) {
  return params.seed + static_cast<std::uint64_t>(trial) * 1000003;
}

struct BandResult {
  std::vector<double> per_network_pps;  ///< mean across trials
  double overall_pps = 0.0;
};

/// Dense-region deployment with a per-network scheme choice (e.g. DCN only
/// on N0 — paper Figs. 14-15). `scheme_of(i)` picks the scheme of network i.
///
/// Trials run on a ParallelRunner with params.jobs workers; each trial is a
/// self-contained Scenario keyed by trial_seed(), and the per-trial results
/// are averaged in seed order, so the answer does not depend on params.jobs.
template <typename SchemeOf>
inline BandResult run_band_mixed(std::span<const phy::Mhz> channels, SchemeOf&& scheme_of,
                                 const BandRunParams& params = {}) {
  sim::ParallelRunner runner{params.jobs};
  const std::vector<BandResult> per_trial = runner.map(params.trials, [&](int trial) {
    const std::uint64_t seed = trial_seed(params, trial);
    sim::RandomStream placement{seed, /*index=*/999};
    const auto specs = net::case1_dense(channels, placement, params.topology);

    net::ScenarioConfig config;
    config.seed = seed;
    config.fixed_cca_threshold = params.fixed_cca;
    net::Scenario scenario{config};
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const int n = scenario.add_network(specs[i].channel, scheme_of(static_cast<int>(i)));
      for (const net::LinkSpec& link : specs[i].links) scenario.add_link(n, link);
    }
    scenario.run(params.warmup, params.measure);

    BandResult one;
    one.per_network_pps = scenario.network_throughputs();
    one.overall_pps = scenario.overall_throughput();
    return one;
  });

  BandResult mean;
  mean.per_network_pps.assign(channels.size(), 0.0);
  for (const BandResult& one : per_trial) {
    for (std::size_t i = 0; i < channels.size(); ++i) {
      mean.per_network_pps[i] += one.per_network_pps[i];
    }
    mean.overall_pps += one.overall_pps;
  }
  for (double& v : mean.per_network_pps) v /= params.trials;
  mean.overall_pps /= params.trials;
  return mean;
}

/// The standard evaluation deployment: all networks in one dense interfering
/// region (the testbed's lab bench; also the paper's Case I), one network
/// per channel, averaged over `params.trials` random layouts. Delegates to
/// run_band_mixed with a constant scheme.
inline BandResult run_band(std::span<const phy::Mhz> channels, net::Scheme scheme,
                           const BandRunParams& params = {}) {
  return run_band_mixed(channels, [scheme](int) { return scheme; }, params);
}

/// CFD → channel list used by the motivation experiment (paper Fig. 1).
/// The paper packs a 12 MHz band and reports these channel counts
/// explicitly (§III-A: 1 channel at 9 MHz, 2 at 5 MHz, and Fig. 1's bars).
inline std::vector<phy::Mhz> motivation_channels(double cfd_mhz) {
  int count = 0;
  if (cfd_mhz >= 9.0) {
    count = 1;
  } else if (cfd_mhz >= 5.0) {
    count = 2;
  } else if (cfd_mhz >= 4.0) {
    count = 3;
  } else if (cfd_mhz >= 3.0) {
    count = 4;
  } else {
    count = 6;
  }
  return phy::evenly_spaced(kBandStart, phy::Mhz{cfd_mhz}, count);
}

inline void print_header(const char* figure, const char* description) {
  std::printf("== %s ==\n%s\n\n", figure, description);
}

inline std::string pps(double value) { return stats::TablePrinter::num(value, 1); }
inline std::string pct(double ratio) { return stats::TablePrinter::num(100.0 * ratio, 1) + "%"; }

}  // namespace nomc::bench
