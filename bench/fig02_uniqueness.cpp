// Paper Fig. 2: why non-orthogonal concurrency is feasible in 802.15.4 but
// not in 802.11b. Two links; the interferer moves away one channel number
// (5 MHz) at a time; the victim's throughput is plotted normalized to its
// isolated value.
//
// Expected shape (paper, after Mishra et al.): 802.11b stays degraded for
// several channel numbers — receivers lock onto overlapped-channel packets
// and senders defer to their wide spectral mask; 802.15.4 recovers
// essentially full throughput from 1 channel number (5 MHz) on.
#include <cstdio>

#include "common.hpp"
#include "wifi/contrast.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Fig. 2", "Normalized victim-link throughput vs channel separation: "
                                "802.11b vs 802.15.4");

  const wifi::ContrastResult b11 = wifi::run_contrast(wifi::Standard::k80211b);
  const wifi::ContrastResult b154 = wifi::run_contrast(wifi::Standard::k802154);

  stats::TablePrinter table{{"separation (channels)", "802.11b", "802.15.4"}};
  for (std::size_t i = 0; i < b11.points.size() && i < b154.points.size(); ++i) {
    table.add_row({std::to_string(b11.points[i].separation),
                   stats::TablePrinter::num(b11.points[i].normalized, 2),
                   stats::TablePrinter::num(b154.points[i].normalized, 2)});
  }
  table.print();
  std::printf("\nPaper: 802.11b needs ~5 channel numbers (25 MHz) to clear; "
              "802.15.4 is clean from separation 1 (5 MHz).\n");
  return 0;
}
