// Paper Figs. 16-18: apply DCN on ALL 5 networks, for CFD = 2 and 3 MHz.
//
// Expected shape:
//   * every network improves over its fixed-CCA self (Figs. 16-17) — the
//     scheme collaborates rather than fighting itself;
//   * middle-of-band networks gain most (they had the most inter-channel
//     interference to stop deferring to), edge networks least (paper: N4 at
//     the band edge gains 4.6 % vs N0's 16.5 % at CFD=3);
//   * overall, CFD=3 MHz clearly beats CFD=2 MHz (Fig. 18; paper: 1.37x),
//     which is why DCN's final design uses CFD=3.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Figs. 16-18", "DCN on all 5 networks: per-network and overall "
                                     "throughput, CFD = 2 and 3 MHz");

  bench::BandRunParams params;
  double overall_with[2] = {0.0, 0.0};
  int idx = 0;
  for (const double cfd : {2.0, 3.0}) {
    const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{cfd}, 5);
    const bench::BandResult without = bench::run_band(channels, net::Scheme::kFixedCca, params);
    const bench::BandResult with = bench::run_band(channels, net::Scheme::kDcn, params);
    overall_with[idx++] = with.overall_pps;

    std::printf("CFD = %.0f MHz (Fig. %d):\n", cfd, cfd == 2.0 ? 16 : 17);
    stats::TablePrinter table{{"network", "w/o scheme (pkt/s)", "with DCN (pkt/s)", "gain"}};
    for (std::size_t i = 0; i < channels.size(); ++i) {
      table.add_row({"N" + std::to_string(i), bench::pps(without.per_network_pps[i]),
                     bench::pps(with.per_network_pps[i]),
                     bench::pct(with.per_network_pps[i] / without.per_network_pps[i] - 1.0)});
    }
    table.add_row({"overall", bench::pps(without.overall_pps), bench::pps(with.overall_pps),
                   bench::pct(with.overall_pps / without.overall_pps - 1.0)});
    table.print();
    std::printf("\n");
  }

  std::printf("Fig. 18 — overall with DCN: CFD=3MHz / CFD=2MHz = %.2fx (paper: 1.37x)\n",
              overall_with[1] / overall_with[0]);
  return 0;
}
