// EXTENSION (not a paper figure): energy efficiency of the three designs.
//
// The paper argues DCN from throughput alone; a deployment engineer also
// asks what it does to the battery. Saturated motes spend their charge on
// TX airtime plus RX/idle listening; a sender stalled in backoff listens
// without delivering, so the fixed CCA's wasted deferrals show up directly
// as energy per delivered packet. This bench reports mJ per delivered
// packet for ZigBee, CFD=3 without DCN, and CFD=3 with DCN on the dense
// evaluation deployment.
#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace nomc;

struct EnergyResult {
  double throughput_pps = 0.0;
  double mj_per_packet = 0.0;
};

EnergyResult run_design(std::span<const phy::Mhz> channels, net::Scheme scheme,
                        int links_per_network, std::uint64_t seed) {
  net::RandomCaseConfig topology = net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
  topology.links_per_network = links_per_network;
  net::ScenarioConfig config;
  config.seed = seed;
  net::Scenario scenario{config};
  sim::RandomStream placement{seed, 999};
  scenario.add_networks(net::case1_dense(channels, placement, topology), scheme);

  const sim::SimTime warmup = sim::SimTime::seconds(2.0);
  const sim::SimTime measure = sim::SimTime::seconds(8.0);

  // Snapshot every radio's consumption at the start of the measurement
  // window so warm-up energy is excluded, mirroring the throughput window.
  std::vector<double> baseline_mj;
  scenario.scheduler().schedule_at(warmup, [&] {
    for (int n = 0; n < scenario.network_count(); ++n) {
      for (int l = 0; l < scenario.link_count(n); ++l) {
        baseline_mj.push_back(scenario.sender_radio(n, l).energy_consumed().total_mj());
        baseline_mj.push_back(scenario.receiver_radio(n, l).energy_consumed().total_mj());
      }
    }
  });
  scenario.run(warmup, measure);

  double total_mj = 0.0;
  std::size_t i = 0;
  double delivered = 0.0;
  for (int n = 0; n < scenario.network_count(); ++n) {
    for (int l = 0; l < scenario.link_count(n); ++l) {
      total_mj += scenario.sender_radio(n, l).energy_consumed().total_mj() - baseline_mj[i++];
      total_mj += scenario.receiver_radio(n, l).energy_consumed().total_mj() - baseline_mj[i++];
    }
    delivered += scenario.network_result(n).throughput_pps * measure.to_seconds();
  }

  EnergyResult result;
  result.throughput_pps = scenario.overall_throughput();
  result.mj_per_packet = delivered > 0.0 ? total_mj / delivered : 0.0;
  return result;
}

}  // namespace

int main() {
  bench::print_header("Extension: energy", "Energy per delivered packet (24 nodes, 15 MHz band, "
                                           "dense deployment, CC2420 current model)");

  const auto zigbee = phy::evenly_spaced(bench::kBandStart, phy::Mhz{5.0}, 4);
  const auto packed = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 6);

  struct Row {
    const char* name;
    EnergyResult result;
  };
  const Row rows[] = {
      {"ZigBee default", run_design(zigbee, net::Scheme::kFixedCca, 3, 1)},
      {"CFD=3, fixed CCA", run_design(packed, net::Scheme::kFixedCca, 2, 1)},
      {"CFD=3, DCN", run_design(packed, net::Scheme::kDcn, 2, 1)},
  };

  stats::TablePrinter table{{"design", "throughput (pkt/s)", "mJ / delivered packet"}};
  for (const Row& row : rows) {
    table.add_row({row.name, bench::pps(row.result.throughput_pps),
                   stats::TablePrinter::num(row.result.mj_per_packet, 3)});
  }
  table.print();
  std::printf("\nAll designs burn the same total power (radios never sleep), so energy per\n"
              "packet is inversely proportional to aggregate throughput: DCN's concurrency\n"
              "gain is also an energy-efficiency gain.\n");
  return 0;
}
