// Paper Figs. 3-4: collided-packet receive rate (CPRR) vs channel frequency
// distance, for the "attacker" collision experiment of §III-B.
//
// Setup (carrier sensing disabled on both senders): a normal link and an
// attacker link on channels CFD apart. The attacker fires a frame every 3 ms
// so that every frame of the normal sender collides. Geometry mirrors the
// interference benches of the testbed: each link spans 12 m and each
// interfering sender sits 1 m from the other link's receiver, i.e. the
// interferer arrives ~24 dB hot — collisions are guaranteed to matter, and
// only the channel rejection decides survival.
//
// Paper's measured staircase: CFD>=4 MHz -> 100 %, 3 MHz -> ~97 %,
// 2 MHz -> ~70 %, 1 MHz -> <20 %.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "mac/attacker.hpp"

namespace {

struct CprrRow {
  double cfd_mhz;
  double normal_cprr;
  double attacker_cprr;
};

CprrRow run_once(double cfd_mhz, std::uint64_t seed) {
  using namespace nomc;
  sim::Scheduler scheduler;
  phy::MediumConfig medium_config;
  medium_config.seed = seed;
  phy::Medium medium{medium_config};

  const phy::Mhz normal_channel{2460.0};
  const phy::Mhz attacker_channel{2460.0 + cfd_mhz};

  // Normal link: (0,0) -> (0,12). Attacker link: (1,12) -> (1,0).
  const phy::NodeId normal_tx = medium.add_node({0.0, 0.0});
  const phy::NodeId normal_rx = medium.add_node({0.0, 12.0});
  const phy::NodeId attacker_tx = medium.add_node({1.0, 12.0});
  const phy::NodeId attacker_rx = medium.add_node({1.0, 0.0});

  std::uint64_t stream = 0;
  phy::RadioConfig normal_radio_cfg;
  normal_radio_cfg.channel = normal_channel;
  phy::RadioConfig attacker_radio_cfg;
  attacker_radio_cfg.channel = attacker_channel;

  phy::Radio normal_tx_radio{scheduler, medium, sim::RandomStream{seed, stream++}, normal_tx,
                             normal_radio_cfg};
  phy::Radio normal_rx_radio{scheduler, medium, sim::RandomStream{seed, stream++}, normal_rx,
                             normal_radio_cfg};
  phy::Radio attacker_tx_radio{scheduler, medium, sim::RandomStream{seed, stream++}, attacker_tx,
                               attacker_radio_cfg};
  phy::Radio attacker_rx_radio{scheduler, medium, sim::RandomStream{seed, stream++}, attacker_rx,
                               attacker_radio_cfg};

  // Both senders bypass carrier sensing (§III-B). The attacker fires every
  // 3 ms; the normal sender paces at 5 ms so its frames always meet one.
  mac::AttackerMac normal_mac{scheduler, medium, normal_tx_radio};
  mac::AttackerMac attacker_mac{scheduler, medium, attacker_tx_radio};
  mac::AttackerMac normal_rx_mac{scheduler, medium, normal_rx_radio};
  mac::AttackerMac attacker_rx_mac{scheduler, medium, attacker_rx_radio};

  normal_mac.start(normal_rx, /*psdu_bytes=*/100, sim::SimTime::milliseconds(5));
  attacker_mac.start(attacker_rx, /*psdu_bytes=*/50, sim::SimTime::milliseconds(3));

  scheduler.run_until(sim::SimTime::seconds(30.0));

  const auto& nc = normal_rx_mac.counters();
  const auto& ac = attacker_rx_mac.counters();
  return CprrRow{cfd_mhz, nc.cprr(), ac.cprr()};
}

}  // namespace

int main() {
  using namespace nomc;
  bench::print_header("Fig. 4", "Collided packet receive rate (CPRR) vs CFD "
                                "(attacker collision experiment, CS disabled)");

  stats::TablePrinter table{{"CFD (MHz)", "normal sender CPRR", "attacker CPRR"}};
  for (const double cfd : {5.0, 4.0, 3.0, 2.0, 1.0}) {
    const CprrRow row = run_once(cfd, /*seed=*/42);
    table.add_row({stats::TablePrinter::num(cfd, 0), bench::pct(row.normal_cprr),
                   bench::pct(row.attacker_cprr)});
  }
  table.print();
  std::printf("\nPaper: >=4 MHz -> 100%%, 3 MHz -> ~97%%, 2 MHz -> ~70%%, 1 MHz -> <20%%\n");
  return 0;
}
