// scaling_curve — city-scale throughput of the simulation substrate.
//
// Drives Medium + Scheduler directly (no radios, no MAC) with a synthetic
// city: N nodes on a 50 m grid, urban path loss (n = 3.5), six channels,
// every node running a CCA-gated periodic sender. Each attempt is one
// scheduler event plus one sense_energy read — the exact pair that
// dominates every figure bench — so events/second here is the substrate's
// end-to-end speed limit.
//
// Three experiments:
//   * culled   — spatial interference culling on (the default config);
//   * dense    — culling disabled: every CCA read walks every active frame,
//                the pre-culling O(N^2) behaviour. Deliberately NOT run at
//                10k nodes: the walk grows ~25x over the 2k point, putting
//                one measurement window into minutes of wall clock while
//                adding nothing beyond the 2k contrast (the skip and this
//                reason are recorded in the JSON);
//   * workers  — the same city split into spatial regions and advanced by
//                sim::RegionExecutor in conservative lookahead windows
//                (lookahead = the 192 us rx/tx turnaround, the same bound
//                the full MAC stack provides), swept across worker counts.
//                The executor's fixed merge order makes the run bit-
//                identical at every worker count; the bench asserts that by
//                comparing event counts against the 1-worker run.
//
// Output: BENCH_scaling.json (see docs/scaling.md for how to read it):
//   {
//     "tool": "scaling_curve",
//     "points": [{"nodes": N, "mode": "culled"|"dense", "events": E,
//                 "wall_ms": W, "events_per_second": R}, ...],
//     "worker_points": [{"nodes": N, "workers": W, "regions": R,
//                        "events": E, "wall_ms": ..., "events_per_second":
//                        ..., "speedup_vs_1": S, "deterministic": true}],
//     "dense_skip_reason": "...",
//     "hardware_threads": <std::thread::hardware_concurrency()>,
//     "speedup_at_2000": <culled rate / dense rate at 2000 nodes>
//   }
//
// Usage:
//   scaling_curve [--out FILE] [--smoke] [--nodes N] [--duration S]
//                 [--workers W]
// --nodes / --duration / --workers pin a single city size, measurement
// window, and worker count instead of the default sweeps; --smoke shrinks
// everything for the tier-1 smoke test.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "mac/cca.hpp"
#include "phy/medium.hpp"
#include "phy/path_loss.hpp"
#include "phy/region_partition.hpp"
#include "phy/timing.hpp"
#include "sim/random.hpp"
#include "sim/region_executor.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace {

using namespace nomc;
using Clock = std::chrono::steady_clock;

constexpr double kSpacingM = 50.0;
constexpr int kChannelCount = 6;

phy::MediumConfig city_medium_config(bool culled) {
  phy::MediumConfig config;
  // Urban propagation: steeper falloff than the paper's indoor testbed, so
  // a 0 dBm sender's influence radius is a few hundred metres and the
  // deployment spans many culling cells (and many executor regions).
  config.path_loss = phy::LogDistancePathLoss{3.5, phy::Db{40.0}, 1.0};
  config.culling.enabled = culled;
  return config;
}

struct Point {
  int nodes = 0;
  bool culled = true;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  [[nodiscard]] double events_per_second() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(events) * 1e3 / wall_ms;
  }
};

struct WorkerPoint {
  int nodes = 0;
  int workers = 0;
  int regions = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double speedup = 0.0;       ///< vs the 1-worker run of the same city
  bool deterministic = true;  ///< event count matches the 1-worker run
  [[nodiscard]] double events_per_second() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(events) * 1e3 / wall_ms;
  }
};

/// One synthetic city: every node periodically senses its channel and, when
/// clear, puts a 4 ms frame on the air. Attempt cadence is jittered per node
/// (hash-seeded, deterministic) so transmissions spread over time.
class City {
 public:
  City(int nodes, bool culled) {
    medium_ = std::make_unique<phy::Medium>(city_medium_config(culled));
    int s = 1;
    while (s * s < nodes) ++s;
    sim::SplitMix64 mix{static_cast<std::uint64_t>(nodes) * 2 + (culled ? 1 : 0)};
    for (int i = 0; i < nodes; ++i) {
      const double x = static_cast<double>(i % s) * kSpacingM;
      const double y = static_cast<double>(i / s) * kSpacingM;
      medium_->add_node({x, y});
      channels_.push_back(phy::Mhz{2445.0 + 3.0 * static_cast<double>(i % kChannelCount)});
      // First attempt spread across one period; cadence jittered +/- 25%.
      period_ns_.push_back(20'000'000 + static_cast<std::int64_t>(mix.next() % 10'000'000));
      const auto phase = static_cast<std::int64_t>(mix.next() % 20'000'000);
      const auto node = static_cast<phy::NodeId>(i);
      scheduler_.schedule_at(sim::SimTime::nanoseconds(phase), [this, node] { attempt(node); });
    }
  }

  /// Runs [0, warmup) untimed, then measures [warmup, warmup + window).
  Point run(sim::SimTime warmup, sim::SimTime window) {
    scheduler_.run_until(warmup);
    const std::uint64_t executed_before = scheduler_.executed();
    const auto start = Clock::now();
    scheduler_.run_until(warmup + window);
    Point point;
    point.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    point.events = scheduler_.executed() - executed_before;
    point.culled = medium_->culling_enabled();
    point.nodes = static_cast<int>(medium_->node_count());
    return point;
  }

 private:
  void attempt(phy::NodeId node) {
    const phy::Mhz channel = channels_[node];
    if (medium_->sense_energy(node, channel).value < mac::kZigbeeDefaultCcaThreshold.value) {
      phy::Frame frame;
      frame.id = medium_->allocate_frame_id();
      frame.src = node;
      frame.channel = channel;
      frame.tx_power = phy::Dbm{0.0};
      frame.psdu_bytes = 100;
      medium_->begin_tx(frame);
      const phy::FrameId id = frame.id;
      scheduler_.schedule_in(sim::SimTime::milliseconds(4),
                             [this, id] { medium_->end_tx(id); });
    }
    scheduler_.schedule_in(sim::SimTime::nanoseconds(period_ns_[node]),
                           [this, node] { attempt(node); });
  }

  sim::Scheduler scheduler_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<phy::Mhz> channels_;
  std::vector<std::int64_t> period_ns_;
};

/// The same city split into spatial regions: one Scheduler + Medium pair per
/// region, advanced by sim::RegionExecutor. A clear CCA commits the frame
/// one turnaround ahead — exactly the lead the real MAC's CCA-to-TX path
/// has — and mirrors it onto every region whose extent the influence disc
/// touches, so carrier sensing sees the same interference as the serial
/// city. A denser attempt cadence (2 ms) keeps each 192 us window populated,
/// which is the regime the executor is built for.
class ShardedCity {
 public:
  ShardedCity(int nodes, int workers)
      : executor_{{.lookahead = phy::kTurnaround, .workers = workers}} {
    const phy::MediumConfig base = city_medium_config(/*culled=*/true);
    influence_radius_m_ = phy::influence_radius_m(base, phy::Dbm{0.0});

    int s = 1;
    while (s * s < nodes) ++s;
    std::vector<phy::Vec2> positions;
    positions.reserve(static_cast<std::size_t>(nodes));
    for (int i = 0; i < nodes; ++i) {
      positions.push_back({static_cast<double>(i % s) * kSpacingM,
                           static_cast<double>(i / s) * kSpacingM});
    }
    const phy::RegionPartition partition =
        phy::RegionPartition::plan(positions, influence_radius_m_, /*max_side=*/8);
    const int regions = partition.region_count();
    extents_.assign(static_cast<std::size_t>(regions), {});
    for (int r = 0; r < regions; ++r) {
      phy::MediumConfig config = base;
      config.node_id_base = static_cast<phy::NodeId>(r) << 20;
      config.frame_id_base = static_cast<phy::FrameId>(r) << 48;
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->medium = std::make_unique<phy::Medium>(config);
      executor_.add_shard(&shards_.back()->scheduler);
    }

    sim::SplitMix64 mix{static_cast<std::uint64_t>(nodes) * 3 + 1};
    for (int i = 0; i < nodes; ++i) {
      const int region = partition.region_of(positions[static_cast<std::size_t>(i)]);
      Shard& shard = *shards_[static_cast<std::size_t>(region)];
      Node node;
      node.region = region;
      node.id = shard.medium->add_node(positions[static_cast<std::size_t>(i)]);
      node.pos = positions[static_cast<std::size_t>(i)];
      node.channel = phy::Mhz{2445.0 + 3.0 * static_cast<double>(i % kChannelCount)};
      node.period_ns = 2'000'000 + static_cast<std::int64_t>(mix.next() % 1'000'000);
      extents_[static_cast<std::size_t>(region)].grow(node.pos);
      const auto phase = static_cast<std::int64_t>(mix.next() % 2'000'000);
      nodes_.push_back(node);
      const std::size_t index = nodes_.size() - 1;
      shard.scheduler.schedule_at(sim::SimTime::nanoseconds(phase),
                                  [this, index] { attempt(index); });
    }
  }

  [[nodiscard]] int region_count() const { return executor_.shard_count(); }

  WorkerPoint run(sim::SimTime warmup, sim::SimTime window, int workers) {
    executor_.run_until(warmup);
    const std::uint64_t executed_before = executor_.executed();
    const auto start = Clock::now();
    executor_.run_until(warmup + window);
    WorkerPoint point;
    point.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    point.events = executor_.executed() - executed_before;
    point.nodes = static_cast<int>(nodes_.size());
    point.workers = workers;
    point.regions = region_count();
    return point;
  }

 private:
  struct Shard {
    sim::Scheduler scheduler;
    std::unique_ptr<phy::Medium> medium;
  };
  struct Node {
    int region = 0;
    phy::NodeId id = 0;
    phy::Vec2 pos{};
    phy::Mhz channel{0.0};
    std::int64_t period_ns = 0;
  };

  void attempt(std::size_t index) {
    const Node& node = nodes_[index];
    Shard& shard = *shards_[static_cast<std::size_t>(node.region)];
    if (shard.medium->sense_energy(node.id, node.channel).value <
        mac::kZigbeeDefaultCcaThreshold.value) {
      phy::Frame frame;
      frame.id = shard.medium->allocate_frame_id();
      frame.src = node.id;
      frame.src_pos = node.pos;
      frame.channel = node.channel;
      frame.tx_power = phy::Dbm{0.0};
      frame.psdu_bytes = 100;
      // Commit one lookahead ahead: the local region schedules directly, and
      // every region the influence disc touches gets a mirrored frame via
      // the executor's deterministic merge.
      const sim::SimTime begin_at = shard.scheduler.now() + phy::kTurnaround;
      const sim::SimTime end_at = begin_at + sim::SimTime::milliseconds(4);
      phy::Medium* local = shard.medium.get();
      shard.scheduler.schedule_at(begin_at, [local, frame] { local->begin_tx(frame); });
      shard.scheduler.schedule_at(end_at, [local, id = frame.id] { local->end_tx(id); });
      for (int r = 0; r < region_count(); ++r) {
        if (r == node.region) continue;
        if (!extents_[static_cast<std::size_t>(r)].intersects_disc(node.pos,
                                                                   influence_radius_m_)) {
          continue;
        }
        phy::Medium* other = shards_[static_cast<std::size_t>(r)]->medium.get();
        executor_.post(node.region, r, begin_at, [other, frame] { other->begin_tx(frame); });
        executor_.post(node.region, r, end_at, [other, id = frame.id] { other->end_tx(id); });
      }
    }
    shard.scheduler.schedule_in(sim::SimTime::nanoseconds(node.period_ns),
                                [this, index] { attempt(index); });
  }

  sim::RegionExecutor executor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<phy::Aabb> extents_;
  std::vector<Node> nodes_;
  double influence_radius_m_ = 0.0;
};

constexpr const char* kDenseSkipReason =
    "dense mode at 10000 nodes is skipped: with culling off every CCA sense "
    "walks every active frame, so the walk grows ~25x over the 2000-node "
    "point and one measurement window takes minutes of wall clock without "
    "adding information beyond the 2000-node culled/dense contrast";

void write_json(const std::string& path, const std::vector<Point>& points,
                const std::vector<WorkerPoint>& worker_points, double speedup) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "scaling_curve: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"tool\": \"scaling_curve\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"mode\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.3f, \"events_per_second\": %.1f}%s\n",
                 p.nodes, p.culled ? "culled" : "dense",
                 static_cast<unsigned long long>(p.events), p.wall_ms, p.events_per_second(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"worker_points\": [\n");
  for (std::size_t i = 0; i < worker_points.size(); ++i) {
    const WorkerPoint& p = worker_points[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"workers\": %d, \"regions\": %d, \"events\": %llu, "
                 "\"wall_ms\": %.3f, \"events_per_second\": %.1f, \"speedup_vs_1\": %.2f, "
                 "\"deterministic\": %s}%s\n",
                 p.nodes, p.workers, p.regions, static_cast<unsigned long long>(p.events),
                 p.wall_ms, p.events_per_second(), p.speedup,
                 p.deterministic ? "true" : "false",
                 i + 1 < worker_points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"dense_skip_reason\": \"%s\",\n", kDenseSkipReason);
  // Worker speedup is bounded by physical cores: a reader comparing
  // speedup_vs_1 against the worker count needs to know the ceiling.
  std::fprintf(out, "  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(out, "  \"speedup_at_2000\": %.2f\n}\n", speedup);
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_string("out", "BENCH_scaling.json", "output JSON path");
  args.add_flag("smoke", "tiny sizes and windows for the tier-1 smoke test");
  args.add_int("nodes", 0, "pin one city size instead of the default sweep");
  args.add_double("duration", 0.0, "measurement window in seconds (0 = default)");
  args.add_int("workers", 0,
               "pin one worker count for the region sweep (0 = sweep 1/2/4/8)");
  if (!args.parse(argc - 1, argv + 1)) {
    std::fprintf(stderr, "scaling_curve: %s\n%s", args.error().c_str(),
                 args.help("scaling_curve").c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help("scaling_curve").c_str(), stdout);
    return 0;
  }

  const std::string out_path = args.get_string("out");
  const bool smoke = args.get_flag("smoke");
  const int pinned_nodes = args.get_int("nodes");
  const int pinned_workers = args.get_int("workers");

  std::vector<int> culled_sizes = smoke ? std::vector<int>{100, 300}
                                        : std::vector<int>{500, 2000, 10000};
  std::vector<int> dense_sizes = smoke ? std::vector<int>{100, 300}
                                       : std::vector<int>{500, 2000};
  std::vector<int> worker_sizes = smoke ? std::vector<int>{300}
                                        : std::vector<int>{2000, 10000};
  if (pinned_nodes > 0) {
    culled_sizes = {pinned_nodes};
    // The dense walk is O(N^2); beyond the default 2k ceiling it takes
    // minutes per point, so a pinned large size skips it (see JSON reason).
    dense_sizes = pinned_nodes <= 2000 ? std::vector<int>{pinned_nodes} : std::vector<int>{};
    worker_sizes = {pinned_nodes};
  }
  std::vector<int> worker_counts = smoke ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4, 8};
  if (pinned_workers > 0) {
    worker_counts = pinned_workers == 1 ? std::vector<int>{1}
                                        : std::vector<int>{1, pinned_workers};
  }

  const sim::SimTime warmup = sim::SimTime::milliseconds(smoke ? 40 : 200);
  const sim::SimTime window =
      args.get_double("duration") > 0.0
          ? sim::SimTime::seconds(args.get_double("duration"))
          : sim::SimTime::milliseconds(smoke ? 100 : 1000);
  // The sharded city runs a 10x denser attempt cadence (every 192 us window
  // must stay populated), so its default window is shorter to keep the whole
  // sweep tolerable; --duration pins both windows.
  const sim::SimTime worker_window =
      args.get_double("duration") > 0.0
          ? sim::SimTime::seconds(args.get_double("duration"))
          : sim::SimTime::milliseconds(smoke ? 60 : 250);

  std::vector<Point> points;
  double rate_culled_ref = 0.0;
  double rate_dense_ref = 0.0;
  const int ref_nodes = pinned_nodes > 0 ? pinned_nodes : (smoke ? 300 : 2000);
  for (const int nodes : culled_sizes) {
    City city{nodes, /*culled=*/true};
    const Point p = city.run(warmup, window);
    if (p.nodes == ref_nodes) rate_culled_ref = p.events_per_second();
    std::printf("culled  %6d nodes: %8llu events in %9.2f ms  (%.0f events/s)\n", p.nodes,
                static_cast<unsigned long long>(p.events), p.wall_ms, p.events_per_second());
    points.push_back(p);
  }
  for (const int nodes : dense_sizes) {
    City city{nodes, /*culled=*/false};
    const Point p = city.run(warmup, window);
    if (p.nodes == ref_nodes) rate_dense_ref = p.events_per_second();
    std::printf("dense   %6d nodes: %8llu events in %9.2f ms  (%.0f events/s)\n", p.nodes,
                static_cast<unsigned long long>(p.events), p.wall_ms, p.events_per_second());
    points.push_back(p);
  }
  if (!smoke && pinned_nodes == 0) std::printf("dense  10000 nodes: skipped — O(N^2)\n");

  // Worker sweep: each (size, workers) pair builds a fresh sharded city, so
  // the 1-worker run is the baseline and the event counts must agree exactly
  // (the executor's determinism contract, asserted here).
  std::vector<WorkerPoint> worker_points;
  const unsigned hardware = std::thread::hardware_concurrency();
  for (const int w : worker_counts) {
    if (static_cast<unsigned>(w) > hardware) {
      std::printf("note: %d workers exceed the %u hardware thread(s) — wall-clock "
                  "speedup is core-bound; results stay bit-identical regardless\n",
                  w, hardware);
      break;
    }
  }
  for (const int nodes : worker_sizes) {
    std::uint64_t events_at_1 = 0;
    double wall_at_1 = 0.0;
    for (const int workers : worker_counts) {
      ShardedCity city{nodes, workers};
      WorkerPoint p = city.run(warmup, worker_window, workers);
      if (workers == 1) {
        events_at_1 = p.events;
        wall_at_1 = p.wall_ms;
      }
      p.deterministic = p.events == events_at_1;
      p.speedup = p.wall_ms > 0.0 ? wall_at_1 / p.wall_ms : 0.0;
      std::printf(
          "regions %6d nodes x %d worker(s): %8llu events in %9.2f ms  "
          "(%.0f events/s, %d regions, %.2fx%s)\n",
          p.nodes, p.workers, static_cast<unsigned long long>(p.events), p.wall_ms,
          p.events_per_second(), p.regions, p.speedup,
          p.deterministic ? "" : ", NONDETERMINISTIC");
      worker_points.push_back(p);
    }
  }

  const double speedup = rate_dense_ref > 0.0 ? rate_culled_ref / rate_dense_ref : 0.0;
  if (rate_dense_ref > 0.0) std::printf("speedup at %d nodes: %.2fx\n", ref_nodes, speedup);
  write_json(out_path, points, worker_points, speedup);
  return 0;
}
