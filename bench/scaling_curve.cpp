// scaling_curve — city-scale throughput of the simulation substrate.
//
// Drives Medium + Scheduler directly (no radios, no MAC) with a synthetic
// city: N nodes on a 50 m grid, urban path loss (n = 3.5), six channels,
// every node running a CCA-gated periodic sender. Each attempt is one
// scheduler event plus one sense_energy read — the exact pair that
// dominates every figure bench — so events/second here is the substrate's
// end-to-end speed limit.
//
// Two modes per node count:
//   * culled   — spatial interference culling on (the default config), and
//   * dense    — culling disabled: every CCA read walks every active frame,
//                the pre-culling O(N^2) behaviour, run only at the smaller
//                sizes where it finishes in reasonable time.
//
// Output: BENCH_scaling.json (see docs/scaling.md for how to read it):
//   {
//     "tool": "scaling_curve",
//     "points": [{"nodes": N, "mode": "culled"|"dense", "events": E,
//                 "wall_ms": W, "events_per_second": R}, ...],
//     "speedup_at_2000": <culled rate / dense rate at 2000 nodes>
//   }
//
// Usage:
//   scaling_curve [--out BENCH_scaling.json] [--smoke]
// --smoke shrinks sizes and the measured window for the tier-1 smoke test.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mac/cca.hpp"
#include "phy/medium.hpp"
#include "phy/path_loss.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace {

using namespace nomc;
using Clock = std::chrono::steady_clock;

constexpr double kSpacingM = 50.0;
constexpr int kChannelCount = 6;

struct Point {
  int nodes = 0;
  bool culled = true;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  [[nodiscard]] double events_per_second() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(events) * 1e3 / wall_ms;
  }
};

/// One synthetic city: every node periodically senses its channel and, when
/// clear, puts a 4 ms frame on the air. Attempt cadence is jittered per node
/// (hash-seeded, deterministic) so transmissions spread over time.
class City {
 public:
  City(int nodes, bool culled) {
    phy::MediumConfig config;
    // Urban propagation: steeper falloff than the paper's indoor testbed, so
    // a 0 dBm sender's influence radius is a few hundred metres and the
    // deployment spans many culling cells.
    config.path_loss = phy::LogDistancePathLoss{3.5, phy::Db{40.0}, 1.0};
    config.culling.enabled = culled;
    medium_ = std::make_unique<phy::Medium>(config);

    const int side = 1;
    int s = side;
    while (s * s < nodes) ++s;
    sim::SplitMix64 mix{static_cast<std::uint64_t>(nodes) * 2 + (culled ? 1 : 0)};
    for (int i = 0; i < nodes; ++i) {
      const double x = static_cast<double>(i % s) * kSpacingM;
      const double y = static_cast<double>(i / s) * kSpacingM;
      medium_->add_node({x, y});
      channels_.push_back(phy::Mhz{2445.0 + 3.0 * static_cast<double>(i % kChannelCount)});
      // First attempt spread across one period; cadence jittered +/- 25%.
      period_ns_.push_back(20'000'000 + static_cast<std::int64_t>(mix.next() % 10'000'000));
      const auto phase = static_cast<std::int64_t>(mix.next() % 20'000'000);
      const auto node = static_cast<phy::NodeId>(i);
      scheduler_.schedule_at(sim::SimTime::nanoseconds(phase), [this, node] { attempt(node); });
    }
  }

  /// Runs [0, warmup) untimed, then measures [warmup, warmup + window).
  Point run(sim::SimTime warmup, sim::SimTime window) {
    scheduler_.run_until(warmup);
    const std::uint64_t executed_before = scheduler_.executed();
    const auto start = Clock::now();
    scheduler_.run_until(warmup + window);
    Point point;
    point.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    point.events = scheduler_.executed() - executed_before;
    point.culled = medium_->culling_enabled();
    point.nodes = static_cast<int>(medium_->node_count());
    return point;
  }

 private:
  void attempt(phy::NodeId node) {
    const phy::Mhz channel = channels_[node];
    if (medium_->sense_energy(node, channel).value < mac::kZigbeeDefaultCcaThreshold.value) {
      phy::Frame frame;
      frame.id = medium_->allocate_frame_id();
      frame.src = node;
      frame.channel = channel;
      frame.tx_power = phy::Dbm{0.0};
      frame.psdu_bytes = 100;
      medium_->begin_tx(frame);
      const phy::FrameId id = frame.id;
      scheduler_.schedule_in(sim::SimTime::milliseconds(4),
                             [this, id] { medium_->end_tx(id); });
    }
    scheduler_.schedule_in(sim::SimTime::nanoseconds(period_ns_[node]),
                           [this, node] { attempt(node); });
  }

  sim::Scheduler scheduler_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<phy::Mhz> channels_;
  std::vector<std::int64_t> period_ns_;
};

void write_json(const std::string& path, const std::vector<Point>& points, double speedup) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "scaling_curve: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"tool\": \"scaling_curve\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"mode\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.3f, \"events_per_second\": %.1f}%s\n",
                 p.nodes, p.culled ? "culled" : "dense",
                 static_cast<unsigned long long>(p.events), p.wall_ms, p.events_per_second(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"speedup_at_2000\": %.2f\n}\n", speedup);
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scaling.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: scaling_curve [--out FILE] [--smoke]\n");
      return 2;
    }
  }

  const std::vector<int> culled_sizes = smoke ? std::vector<int>{100, 300}
                                              : std::vector<int>{500, 2000, 10000};
  const std::vector<int> dense_sizes = smoke ? std::vector<int>{100, 300}
                                             : std::vector<int>{500, 2000};
  const sim::SimTime warmup = sim::SimTime::milliseconds(smoke ? 40 : 200);
  const sim::SimTime window = sim::SimTime::milliseconds(smoke ? 100 : 1000);

  std::vector<Point> points;
  double rate_culled_ref = 0.0;
  double rate_dense_ref = 0.0;
  const int ref_nodes = smoke ? 300 : 2000;
  for (const int nodes : culled_sizes) {
    City city{nodes, /*culled=*/true};
    const Point p = city.run(warmup, window);
    if (p.nodes == ref_nodes) rate_culled_ref = p.events_per_second();
    std::printf("culled  %6d nodes: %8llu events in %9.2f ms  (%.0f events/s)\n", p.nodes,
                static_cast<unsigned long long>(p.events), p.wall_ms, p.events_per_second());
    points.push_back(p);
  }
  for (const int nodes : dense_sizes) {
    City city{nodes, /*culled=*/false};
    const Point p = city.run(warmup, window);
    if (p.nodes == ref_nodes) rate_dense_ref = p.events_per_second();
    std::printf("dense   %6d nodes: %8llu events in %9.2f ms  (%.0f events/s)\n", p.nodes,
                static_cast<unsigned long long>(p.events), p.wall_ms, p.events_per_second());
    points.push_back(p);
  }

  const double speedup = rate_dense_ref > 0.0 ? rate_culled_ref / rate_dense_ref : 0.0;
  std::printf("speedup at %d nodes: %.2fx\n", ref_nodes, speedup);
  write_json(out_path, points, speedup);
  return 0;
}
