// service_throughput — microbenchmark for the campaign service (src/svc)
// and the store index sidecar (exp::StoreIndex).
//
// Two families, emitted in the BENCH_*.json format documented in
// docs/parallel_runner.md:
//
//   submit_cold       one op = one submit of a never-seen spec over the Unix
//                     socket: parse, hash, simulate, checkpoint, reply.
//   submit_cache_hit  one op = one submit of an already-stored spec: the
//                     server answers from the (spec_hash, point) cache
//                     without simulating. The cold/hot ratio is the price
//                     the cache saves every duplicate client.
//   lookup_indexed    one op = one point query against an open StoreIndex
//                     (ordered-map find + one seek/read of the record line).
//   lookup_linear     the same query answered the pre-index way: a full
//                     scan_store pass that parses every record. The gap is
//                     the reason the .idx sidecar exists; it must widen with
//                     the record count (10k vs 100k here).
//
// The server runs in-process and is driven through Server::step(), the same
// single-threaded idiom the svc tests use — no background thread, so the
// socket round-trip is measured without scheduler noise.
//
//   service_throughput --out BENCH_service.json --min-ms 300
//   service_throughput --smoke --out BENCH_service_smoke.json
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/options.hpp"
#include "exp/result_store.hpp"
#include "exp/spec.hpp"
#include "exp/store_index.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace {

using namespace nomc;
using Clock = std::chrono::steady_clock;

// One sweep point, sub-second simulated time: the cold path still pays the
// full submit pipeline (parse, hash, simulate, checkpoint) per op.
std::string spec_text(const std::string& name) {
  return "name = " + name +
         "\n"
         "channels = 2\n"
         "links = 1\n"
         "power = 0\n"
         "warmup = 0.05\n"
         "measure = 0.1\n"
         "trials = 1\n"
         "sweep links = 1\n";
}

std::string temp_root() {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string{tmpdir != nullptr ? tmpdir : "/tmp"};
}

struct BenchResult {
  std::string name;
  long long ops = 0;
  double ns_per_op = 0.0;
};

/// Drain the poll loop without sleeping: timeout 0 keeps idle steps cheap.
void pump(svc::Server& server, int steps = 8) {
  std::string error;
  for (int i = 0; i < steps; ++i) {
    if (!server.step(/*timeout_ms=*/0, error)) {
      std::fprintf(stderr, "server step failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
}

/// send + pump + recv — the request fits the socket buffer, so the blocking
/// send returns before the server polls (same idiom as tests/svc).
std::string roundtrip(svc::Server& server, svc::Client& client, const std::string& request) {
  std::string error;
  if (!client.send_line(request, error)) {
    std::fprintf(stderr, "send failed: %s\n", error.c_str());
    std::exit(1);
  }
  pump(server);
  std::string line;
  if (!client.recv_line(line, error)) {
    std::fprintf(stderr, "recv failed: %s\n", error.c_str());
    std::exit(1);
  }
  return line;
}

std::string submit_request(const std::string& spec) {
  std::string request = "{\"op\":\"submit\",\"spec\":";
  exp::json_append_string(request, spec);
  request += '}';
  return request;
}

void expect_ok(const std::string& reply) {
  exp::JsonValue value;
  std::string error;
  if (!svc::parse_reply(reply, value, error) || value.find("ok") == nullptr ||
      !value.find("ok")->boolean) {
    std::fprintf(stderr, "server rejected a bench request: %s\n", reply.c_str());
    std::exit(1);
  }
}

/// Cold vs cache-hit submit QPS over the socket, one in-process server.
void measure_submits(double min_ms, std::vector<BenchResult>& results) {
  svc::Server server;
  svc::ServerConfig config;
  config.socket_path = "/tmp/nomc_bench_svc.sock";
  config.data_dir = temp_root() + "/nomc_bench_svc_data";
  // A stale cache from an earlier run would turn "cold" submits into hits.
  std::filesystem::remove_all(config.data_dir);
  std::string error;
  if (!server.open(config, error)) {
    std::fprintf(stderr, "server open failed: %s\n", error.c_str());
    std::exit(1);
  }
  svc::Client client;
  if (!client.connect(config.socket_path, error)) {
    std::fprintf(stderr, "client connect failed: %s\n", error.c_str());
    std::exit(1);
  }
  pump(server);  // pick the connection up before timing starts

  // Cold: every op submits a spec the server has never seen. The name is
  // part of the canonical spec, so each iteration gets a fresh spec_hash
  // while the simulation workload stays constant.
  long long cold_ops = 0;
  const auto cold_start = Clock::now();
  double cold_ms = 0.0;
  do {
    expect_ok(roundtrip(server, client,
                        submit_request(spec_text("bench_cold_" + std::to_string(cold_ops)))));
    ++cold_ops;
    cold_ms = std::chrono::duration<double, std::milli>(Clock::now() - cold_start).count();
  } while (cold_ms < min_ms);
  results.push_back({"submit_cold", cold_ops, cold_ms * 1e6 / static_cast<double>(cold_ops)});

  // Hot: one warm-up submit stores the spec, then every timed op is a pure
  // (spec_hash, point) cache hit — zero simulation.
  const std::string hot = submit_request(spec_text("bench_hot"));
  expect_ok(roundtrip(server, client, hot));
  long long hot_ops = 0;
  const auto hot_start = Clock::now();
  double hot_ms = 0.0;
  do {
    expect_ok(roundtrip(server, client, hot));
    ++hot_ops;
    hot_ms = std::chrono::duration<double, std::milli>(Clock::now() - hot_start).count();
  } while (hot_ms < min_ms);
  results.push_back(
      {"submit_cache_hit", hot_ops, hot_ms * 1e6 / static_cast<double>(hot_ops)});
}

// An 8-point grid for the sharded sweep: one submit fans the points out
// across the worker processes, so points/s reflects lease/IPC overlap.
std::string sharded_spec_text(const std::string& name) {
  return "name = " + name +
         "\n"
         "channels = 2\n"
         "links = 1\n"
         "power = 0\n"
         "warmup = 0.05\n"
         "measure = 0.1\n"
         "trials = 1\n"
         "sweep links = 1 2 3 4 5 6 7 8\n";
}

/// Sharded submit throughput at a given worker count: one op is one computed
/// sweep point, measured over whole submit round trips of fresh 8-point
/// grids. workers=1 vs the in-process submit_cold is the fork/exec + pipe
/// protocol overhead; 2 and 4 show the overlap the lease scheduler buys.
/// CAVEAT: on a single-core container the sweep measures scheduling overlap,
/// not real parallel speedup — see the "note" field in the JSON.
void measure_sharded_submits(int workers, double min_ms, std::vector<BenchResult>& results) {
  svc::Server server;
  svc::ServerConfig config;
  config.socket_path = "/tmp/nomc_bench_svc_w" + std::to_string(workers) + ".sock";
  config.data_dir = temp_root() + "/nomc_bench_svc_w" + std::to_string(workers) + "_data";
  config.workers = workers;
  config.lease_points = 1;
  config.worker_argv = {NOMC_CAMPAIGN_BIN, "worker"};
  std::filesystem::remove_all(config.data_dir);
  std::string error;
  if (!server.open(config, error)) {
    std::fprintf(stderr, "server open failed: %s\n", error.c_str());
    std::exit(1);
  }
  svc::Client client;
  if (!client.connect(config.socket_path, error)) {
    std::fprintf(stderr, "client connect failed: %s\n", error.c_str());
    std::exit(1);
  }
  pump(server);

  constexpr int kPointsPerSubmit = 8;
  long long points = 0;
  const auto start = Clock::now();
  double elapsed_ms = 0.0;
  do {
    const std::string request = submit_request(
        sharded_spec_text("bench_w" + std::to_string(workers) + "_" + std::to_string(points)));
    if (!client.send_line(request, error)) {
      std::fprintf(stderr, "send failed: %s\n", error.c_str());
      std::exit(1);
    }
    // Drive the supervisor until the grid drains (the first few steps are
    // still accepting/reading the submit, so never early-exit on them).
    for (int i = 0; i < 200000; ++i) {
      if (!server.step(/*timeout_ms=*/1, error)) {
        std::fprintf(stderr, "server step failed: %s\n", error.c_str());
        std::exit(1);
      }
      if (i >= 8 && !server.busy()) break;
    }
    pump(server);
    std::string line;
    if (!client.recv_line(line, error)) {
      std::fprintf(stderr, "recv failed: %s\n", error.c_str());
      std::exit(1);
    }
    expect_ok(line);
    points += kPointsPerSubmit;
    elapsed_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  } while (elapsed_ms < min_ms);
  results.push_back({"submit_sharded/workers=" + std::to_string(workers), points,
                     elapsed_ms * 1e6 / static_cast<double>(points)});
}

constexpr const char* kSyntheticHash = "00112233aabbccdd";

/// A well-formed v1 record line (with trailing newline) for `point`.
std::string record_line(int point) {
  return R"({"v":1,"campaign":"bench","spec_hash":")" + std::string{kSyntheticHash} +
         R"(","point":)" + std::to_string(point) +
         R"(,"sweep":{"links":"1"},"params":{},"per_network":{"pps":[)" +
         std::to_string(point % 97) +
         R"(],"prr":[1],"backoffs_per_s":[0],"drops_per_s":[0]},)" +
         R"("overall_pps":1,"jain":1})" + "\n";
}

/// Indexed vs linear single-record retrieval on a synthetic store of
/// `records` lines.
void measure_lookups(int records, double min_ms, std::vector<BenchResult>& results) {
  const std::string store =
      temp_root() + "/nomc_bench_idx_" + std::to_string(records) + ".jsonl";
  std::FILE* out = std::fopen(store.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", store.c_str());
    std::exit(1);
  }
  for (int point = 0; point < records; ++point) {
    const std::string line = record_line(point);
    std::fwrite(line.data(), 1, line.size(), out);
  }
  std::fclose(out);
  std::remove(exp::StoreIndex::index_path(store).c_str());

  std::string error;
  exp::StoreIndex index;
  if (!index.open(store, kSyntheticHash, error)) {  // builds + persists the sidecar
    std::fprintf(stderr, "index open failed: %s\n", error.c_str());
    std::exit(1);
  }
  const std::string suffix = "/records=" + std::to_string(records);

  // Indexed: the steady-state server path — the index is already open, one
  // op is find() + a single seek/read of the record line.
  long long indexed_ops = 0;
  int next_point = 0;
  const auto indexed_start = Clock::now();
  double indexed_ms = 0.0;
  do {
    const exp::StoreIndex::Entry* entry = index.find(kSyntheticHash, next_point);
    std::string line;
    if (entry == nullptr || !index.read_line(*entry, line, error)) {
      std::fprintf(stderr, "indexed lookup failed at point %d\n", next_point);
      std::exit(1);
    }
    next_point = (next_point + 7919) % records;  // stride coprime to the count
    ++indexed_ops;
    indexed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - indexed_start).count();
  } while (indexed_ms < min_ms);
  results.push_back({"lookup_indexed" + suffix, indexed_ops,
                     indexed_ms * 1e6 / static_cast<double>(indexed_ops)});

  // Linear: what query cost before the sidecar existed — scan_store parses
  // every record, then the one asked for is picked out.
  long long linear_ops = 0;
  next_point = 0;
  const auto linear_start = Clock::now();
  double linear_ms = 0.0;
  do {
    exp::StoreScan scan;
    if (!exp::scan_store(store, kSyntheticHash, scan, error)) {
      std::fprintf(stderr, "scan_store failed: %s\n", error.c_str());
      std::exit(1);
    }
    bool found = false;
    for (const exp::ResultRecord& record : scan.records) {
      if (record.point == next_point) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "linear lookup lost point %d\n", next_point);
      std::exit(1);
    }
    next_point = (next_point + 7919) % records;
    ++linear_ops;
    linear_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - linear_start).count();
  } while (linear_ms < min_ms);
  results.push_back({"lookup_linear" + suffix, linear_ops,
                     linear_ms * 1e6 / static_cast<double>(linear_ops)});

  std::remove(store.c_str());
  std::remove(exp::StoreIndex::index_path(store).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args;
  args.add_string("out", "BENCH_service.json", "output JSON path");
  args.add_double("min-ms", 300.0, "minimum measured wall time per benchmark (ms)");
  args.add_flag("smoke", "tiny sizes and budgets (CI smoke mode)");
  if (const auto exit_code = cli::parse_standard(args, argc, argv, argv[0])) {
    return *exit_code;
  }
  const bool smoke = args.get_flag("smoke");
  const double min_ms = smoke ? 1.0 : args.get_double("min-ms");
  const std::vector<int> record_counts =
      smoke ? std::vector<int>{1000} : std::vector<int>{10000, 100000};

  std::vector<BenchResult> results;
  measure_submits(min_ms, results);
  for (const int workers : {1, 2, 4}) measure_sharded_submits(workers, min_ms, results);
  for (const int records : record_counts) measure_lookups(records, min_ms, results);

  std::FILE* out = std::fopen(args.get_string("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.get_string("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"tool\": \"service_throughput\",\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"note\": \"submit_sharded compares worker counts on whatever cores this "
               "host has; on a single-core machine the deltas measure lease/IPC scheduling "
               "overlap, not parallel speedup\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"iterations\": %lld, \"ns_per_op\": %.2f, "
                 "\"ops_per_second\": %.1f}%s\n",
                 r.name.c_str(), r.ops, r.ns_per_op, 1e9 / r.ns_per_op,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  for (const BenchResult& r : results) {
    std::printf("%-36s %10lld ops  %12.2f us/op\n", r.name.c_str(), r.ops,
                r.ns_per_op / 1e3);
  }
  std::printf("\nwritten to %s\n", args.get_string("out").c_str());
  return 0;
}
