// The paper's Fig. 5 experiment configuration, shared by the CCA-sweep
// benches (Figs. 6-10 and 28): one victim link surrounded by four
// neighbouring-channel interferer networks at CFD = ±3 and ±6 MHz, all
// interferers at 0 dBm with the default fixed CCA.
//
// Geometry: the victim link spans 2 m; interferer networks sit 2.2 m away
// in the four cardinal directions — close enough that their 3 MHz leakage
// reads right around the −77 dBm default threshold at the victim sender,
// which is precisely the regime the paper probes (the fixed threshold backs
// off on tolerable inter-channel energy).
#pragma once

#include "net/scenario.hpp"

namespace nomc::bench {

struct Fig5Setup {
  int victim_network = -1;             ///< network index of the victim link
  std::vector<int> interferer_networks;
  std::vector<int> cochannel_networks; ///< Fig. 8 only
};

inline constexpr phy::Mhz kVictimChannel{2464.0};

/// Build the victim + 4 inter-channel interferer networks. When
/// `cochannel_links` > 0, that many extra same-channel links are placed
/// around the victim (the Fig. 8 extension).
inline Fig5Setup build_fig5(net::Scenario& scenario, phy::Dbm victim_power,
                            int cochannel_links = 0) {
  Fig5Setup setup;

  setup.victim_network = scenario.add_network(kVictimChannel, net::Scheme::kFixedCca);
  net::LinkSpec victim;
  victim.sender_pos = {0.0, 0.0};
  victim.receiver_pos = {0.0, 2.0};
  victim.tx_power = victim_power;
  scenario.add_link(setup.victim_network, victim);

  // Same-channel competitors (Fig. 8): co-located with the victim.
  for (int i = 0; i < cochannel_links; ++i) {
    const int n = scenario.add_network(kVictimChannel, net::Scheme::kFixedCca);
    const double angle = 2.0944 * (i + 1);  // 120 degrees apart
    net::LinkSpec link;
    link.sender_pos = {1.8 * std::cos(angle), 1.8 * std::sin(angle)};
    link.receiver_pos = {link.sender_pos.x, link.sender_pos.y + 2.0};
    link.tx_power = phy::Dbm{0.0};
    scenario.add_link(n, link);
    setup.cochannel_networks.push_back(n);
  }

  // Four neighbouring-channel networks at ±3 and ±6 MHz, two links each.
  const struct {
    double dx, dy, df;
  } interferers[] = {
      {2.2, 0.0, +3.0}, {-2.2, 0.0, -3.0}, {0.0, 2.2, +6.0}, {0.0, -2.2, -6.0}};
  for (const auto& it : interferers) {
    const phy::Mhz channel = kVictimChannel + phy::Mhz{it.df};
    const int n = scenario.add_network(channel, net::Scheme::kFixedCca);
    for (int l = 0; l < 2; ++l) {
      net::LinkSpec link;
      link.sender_pos = {it.dx + 0.5 * l, it.dy};
      link.receiver_pos = {it.dx + 0.5 * l, it.dy + 2.0};
      link.tx_power = phy::Dbm{0.0};
      scenario.add_link(n, link);
    }
    setup.interferer_networks.push_back(n);
  }
  return setup;
}

}  // namespace nomc::bench
