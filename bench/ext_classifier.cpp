// EXTENSION — the paper's §VII-C future work, implemented and measured.
//
// DCN's admitted weakness: its threshold is bounded by the minimum
// co-channel RSSI (Eq. 1), so a weak co-channel partner (Case III) forces a
// conservative threshold that also suppresses harmless inter-channel
// concurrency. §VII-C asks for a scheme that "differentiates the current
// interference (co-channel or not)". Carrier-sense CCA (CC2420 CCA mode 2)
// is exactly that classifier in hardware: the modulation detector only
// triggers on the tuned channel, so inter-channel energy is invisible by
// construction while every co-channel transmission still defers the sender.
//
// This bench compares fixed CCA, DCN, and carrier-sense CCA on the dense
// deployment and on Case III — the configuration where DCN's limitation
// bites and the classifier should shine.
#include <cstdio>
#include <functional>

#include "common.hpp"

namespace {

using namespace nomc;

double run_case(bool dense, net::Scheme scheme, int trials) {
  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 6);
  double overall = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 17 + static_cast<std::uint64_t>(trial) * 1000003;
    net::RandomCaseConfig topo;
    if (dense) topo.region_m = 3.0;
    sim::RandomStream placement{seed, 999};
    const auto specs = dense ? net::case1_dense(channels, placement, topo)
                             : net::case3_random(channels, placement, topo);
    net::ScenarioConfig config;
    config.seed = seed;
    net::Scenario scenario{config};
    scenario.add_networks(specs, scheme);
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(8.0));
    overall += scenario.overall_throughput();
  }
  return overall / trials;
}

}  // namespace

int main() {
  bench::print_header("Extension: interference classifier (§VII-C)",
                      "Fixed CCA vs DCN vs carrier-sense CCA, 6 channels @ 3 MHz, "
                      "random TX power in [-22, 0] dBm");

  stats::TablePrinter table{{"configuration", "fixed CCA", "DCN", "carrier-sense CCA",
                             "CS vs DCN"}};
  for (const bool dense : {true, false}) {
    const int trials = 5;
    const double fixed = run_case(dense, net::Scheme::kFixedCca, trials);
    const double dcn = run_case(dense, net::Scheme::kDcn, trials);
    const double cs = run_case(dense, net::Scheme::kCarrierSense, trials);
    table.add_row({dense ? "Case I (dense)" : "Case III (random)", bench::pps(fixed),
                   bench::pps(dcn), bench::pps(cs), bench::pct(cs / dcn - 1.0)});
  }
  table.print();
  std::printf("\nCarrier-sense CCA never defers to inter-channel energy, so it matches or\n"
              "beats DCN everywhere — and recovers the concurrency DCN forfeits in Case III\n"
              "(weak co-channel RSSI). The cost is hardware support for modulation-detect\n"
              "CCA, which energy-threshold-only designs (and the paper's DCN) avoid.\n");
  return 0;
}
