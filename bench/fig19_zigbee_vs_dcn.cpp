// Paper Fig. 19: the headline comparison. Given a 15 MHz band
// (2458-2473 MHz):
//   * default ZigBee design: 4 channels at CFD=5 MHz, fixed -77 dBm CCA;
//   * the paper's design: 6 channels at CFD=3 MHz, DCN on every network.
// The paper reports ~58 % overall throughput improvement, with each DCN
// network also individually beating its ZigBee counterpart.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nomc;
  bench::print_header("Fig. 19", "Overall throughput: default ZigBee (4ch @ 5MHz, fixed CCA) "
                                 "vs DCN design (6ch @ 3MHz) on a 15 MHz band");

  const auto zigbee_channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{5.0}, 4);
  const auto dcn_channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 6);

  const bench::BandResult zigbee = bench::run_band(zigbee_channels, net::Scheme::kFixedCca);
  const bench::BandResult dcn = bench::run_band(dcn_channels, net::Scheme::kDcn);

  stats::TablePrinter table{{"design", "channels", "overall (pkt/s)", "mean/network (pkt/s)"}};
  table.add_row({"ZigBee default", std::to_string(zigbee_channels.size()),
                 bench::pps(zigbee.overall_pps),
                 bench::pps(zigbee.overall_pps / static_cast<double>(zigbee_channels.size()))});
  table.add_row({"DCN (CFD=3MHz)", std::to_string(dcn_channels.size()),
                 bench::pps(dcn.overall_pps),
                 bench::pps(dcn.overall_pps / static_cast<double>(dcn_channels.size()))});
  table.print();

  std::printf("\nPer-network breakdown:\n");
  stats::TablePrinter detail{{"network", "ZigBee (pkt/s)", "DCN (pkt/s)"}};
  const std::size_t rows = std::max(zigbee.per_network_pps.size(), dcn.per_network_pps.size());
  for (std::size_t i = 0; i < rows; ++i) {
    detail.add_row({"N" + std::to_string(i),
                    i < zigbee.per_network_pps.size() ? bench::pps(zigbee.per_network_pps[i]) : "-",
                    i < dcn.per_network_pps.size() ? bench::pps(dcn.per_network_pps[i]) : "-"});
  }
  detail.print();

  const double gain = zigbee.overall_pps > 0.0
                          ? (dcn.overall_pps - zigbee.overall_pps) / zigbee.overall_pps
                          : 0.0;
  std::printf("\nOverall improvement: %.1f%% (paper: ~58%%)\n", 100.0 * gain);
  return 0;
}
