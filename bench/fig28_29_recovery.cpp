// Paper Figs. 28-29: packet recovery under severe inter-channel asymmetry.
//
// The victim link transmits at -22 dBm against 0 dBm interferers on the
// neighbouring channels (Fig. 5 configuration, interferers pulled close).
// With a relaxed CCA threshold about 20 % of the victim's packets fail CRC
// (Fig. 28's sent-vs-received gap) — but most failures carry only a small
// fraction of error bits (Fig. 29: 87 % of CRC failures have <= 10 % error
// bits), so a PPR-style recovery scheme reclaims nearly all of them
// ("Recoverable" ~ sent).
//
// Secondary table: ablation of the recovery threshold (max repairable
// error-bit fraction).
#include <cstdio>

#include "common.hpp"
#include "dcn/recovery.hpp"
#include "net/scenario.hpp"

namespace {

using namespace nomc;

struct RecoveryRun {
  double sent_pps = 0.0;
  double received_pps = 0.0;
  double recoverable_pps = 0.0;
  dcn::RecoveryAnalyzer analyzer;
};

/// Fig. 5-style layout with the interferer networks pulled to 1 m of the
/// victim receiver, so their 3 MHz leakage meaningfully corrupts the weak
/// -22 dBm link once the CCA threshold stops suppressing concurrency.
std::unique_ptr<net::Scenario> build(double threshold_dbm, RecoveryRun& run,
                                     double max_error_fraction) {
  auto scenario = std::make_unique<net::Scenario>();
  const phy::Mhz victim_channel{2464.0};

  const int victim = scenario->add_network(victim_channel, net::Scheme::kFixedCca);
  net::LinkSpec link;
  link.sender_pos = {0.0, 0.0};
  link.receiver_pos = {0.0, 2.0};
  link.tx_power = phy::Dbm{-22.0};
  scenario->add_link(victim, link);
  scenario->fixed_cca(victim, 0).set(phy::Dbm{threshold_dbm});

  const struct {
    double dx, dy, df;
  } interferers[] = {{1.0, 2.0, +3.0}, {-1.0, 2.0, -3.0}, {0.0, 3.4, +6.0}, {0.0, -1.4, -6.0}};
  for (const auto& it : interferers) {
    const int n = scenario->add_network(victim_channel + phy::Mhz{it.df}, net::Scheme::kFixedCca);
    for (int l = 0; l < 2; ++l) {
      net::LinkSpec i_link;
      i_link.sender_pos = {it.dx + 0.4 * l, it.dy};
      i_link.receiver_pos = {it.dx + 0.4 * l, it.dy + 2.0};
      i_link.tx_power = phy::Dbm{0.0};
      scenario->add_link(n, i_link);
    }
  }

  run.analyzer = dcn::RecoveryAnalyzer{dcn::RecoveryConfig{max_error_fraction}};
  dcn::RecoveryAnalyzer* analyzer = &run.analyzer;
  const phy::NodeId victim_rx = scenario->receiver_radio(victim, 0).node();
  scenario->receiver_mac(victim, 0).set_rx_hook([analyzer, victim_rx](const phy::RxResult& rx) {
    if (rx.frame.dst == victim_rx) analyzer->on_rx(rx);
  });
  return scenario;
}

}  // namespace

int main() {
  bench::print_header("Figs. 28-29", "Partial packet recovery: -22 dBm victim vs 0 dBm "
                                     "inter-channel interferers");

  const double measure_s = 8.0;
  stats::TablePrinter table{{"CCA thr (dBm)", "sent (pkt/s)", "received (pkt/s)",
                             "recoverable (pkt/s)", "PRR", "PRR w/ recovery"}};
  dcn::RecoveryAnalyzer relaxed_analyzer;
  for (int thr = -95; thr <= -20; thr += 10) {
    RecoveryRun run;
    auto scenario = build(thr, run, 0.10);
    const int victim = 0;
    scenario->run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(measure_s));
    const auto result = scenario->network_result(victim);

    const double sent = static_cast<double>(result.links[0].sender.sent) / measure_s;
    const double received = result.links[0].throughput_pps;
    // Recoverable counts accumulate from t=0; rates below are conservative.
    const double recoverable =
        received + static_cast<double>(run.analyzer.recoverable()) / (measure_s + 1.0);
    table.add_row({std::to_string(thr), bench::pps(sent), bench::pps(received),
                   bench::pps(recoverable), bench::pct(result.links[0].prr),
                   bench::pct(sent > 0 ? recoverable / sent : 1.0)});
    if (thr == -25) relaxed_analyzer = run.analyzer;  // most relaxed point of the sweep
  }
  table.print();

  std::printf("\nFig. 29 — CDF of error-bit fraction among CRC-failed packets "
              "(most relaxed threshold):\n");
  const auto& cdf = relaxed_analyzer.error_fraction_cdf();
  if (cdf.empty()) {
    std::printf("  (no CRC failures observed)\n");
  } else {
    stats::TablePrinter curve{{"error-bit fraction <=", "cumulative fraction"}};
    for (const double x : {0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.0}) {
      curve.add_row({stats::TablePrinter::num(x, 2),
                     stats::TablePrinter::num(cdf.fraction_at_or_below(x), 2)});
    }
    curve.print();
    std::printf("\nAt 0.10: %.2f (paper: 0.87)\n", cdf.fraction_at_or_below(0.10));

    std::printf("\nAblation — recovery threshold (max repairable error fraction):\n");
    stats::TablePrinter ablation{{"threshold", "recoverable share of CRC failures"}};
    for (const double t : {0.02, 0.05, 0.10, 0.20, 0.50}) {
      ablation.add_row({stats::TablePrinter::num(t, 2),
                        stats::TablePrinter::num(cdf.fraction_at_or_below(t), 2)});
    }
    ablation.print();
  }
  return 0;
}
